"""Baseline round-trip, matching semantics, and drift detection."""

import json

import pytest

from repro.analysis import Baseline, Finding, lint_source

VIOLATION = "groups.setdefault(id(x), []).append(1)\n"


def findings_for(src, path="pkg/mod.py"):
    return lint_source(src, path)


class TestRoundTrip:
    def test_save_load_partition(self, tmp_path):
        findings = findings_for(VIOLATION)
        assert findings
        path = tmp_path / "baseline.json"
        Baseline.save(path, findings)
        result = Baseline.load(path).check(findings)
        assert result.clean
        assert result.matched == findings
        assert result.new == [] and result.stale == []

    def test_saved_document_is_stable_json(self, tmp_path):
        findings = findings_for(VIOLATION)
        path = tmp_path / "baseline.json"
        Baseline.save(path, findings)
        doc = json.loads(path.read_text())
        assert doc["version"] == 1
        entry = doc["findings"][0]
        assert set(entry) == {"rule", "path", "fingerprint", "snippet"}
        # Saving again yields byte-identical output (deterministic order).
        before = path.read_text()
        Baseline.save(path, findings)
        assert path.read_text() == before

    def test_missing_file_is_empty(self, tmp_path):
        result = Baseline.load(tmp_path / "absent.json").check(findings_for(VIOLATION))
        assert len(result.new) == 1 and not result.stale

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestMatching:
    def test_new_finding_not_covered(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.save(path, findings_for(VIOLATION))
        grown = findings_for(VIOLATION + "import time\nt = time.time()\n")
        result = Baseline.load(path).check(grown)
        assert [f.rule for f in result.new] == ["CLK001"]
        assert [f.rule for f in result.matched] == ["DET001"]
        assert not result.stale

    def test_fixed_finding_goes_stale(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.save(path, findings_for(VIOLATION))
        result = Baseline.load(path).check([])
        assert not result.new
        assert [e["rule"] for e in result.stale] == ["DET001"]
        assert not result.clean

    def test_fingerprint_survives_line_moves(self):
        a = findings_for(VIOLATION)[0]
        b = findings_for("# a new comment above\n" + VIOLATION)[0]
        assert a.line != b.line
        assert a.fingerprint == b.fingerprint

    def test_duplicate_findings_match_as_multiset(self, tmp_path):
        twice = findings_for(VIOLATION + VIOLATION)
        assert len(twice) == 2
        path = tmp_path / "baseline.json"
        Baseline.save(path, twice)
        # Both occurrences covered; dropping one leaves one stale entry.
        assert Baseline.load(path).check(twice).clean
        result = Baseline.load(path).check(twice[:1])
        assert not result.new and len(result.stale) == 1

    def test_different_paths_do_not_match(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.save(path, findings_for(VIOLATION, path="pkg/a.py"))
        result = Baseline.load(path).check(findings_for(VIOLATION, path="pkg/b.py"))
        assert len(result.new) == 1 and len(result.stale) == 1


class TestFindingFingerprint:
    def test_depends_on_rule_path_and_snippet(self):
        base = Finding("DET001", "a.py", 3, 0, "msg", "x = id(y)")
        assert base.fingerprint == Finding("DET001", "a.py", 9, 4, "other", "x = id(y)").fingerprint
        assert base.fingerprint != Finding("DET002", "a.py", 3, 0, "msg", "x = id(y)").fingerprint
        assert base.fingerprint != Finding("DET001", "b.py", 3, 0, "msg", "x = id(y)").fingerprint
        assert base.fingerprint != Finding("DET001", "a.py", 3, 0, "msg", "z = id(y)").fingerprint
