"""Whole-program rules: violation / noqa / clean fixture per rule.

Every rule gets three fixtures: code that violates the contract, the
same code with an explicit ``# repro: noqa[RULE]`` suppression, and a
compliant variant that must produce zero findings.  WRK001 findings
additionally pin the ``--why`` witness chain end to end.
"""

import textwrap

from repro.analysis import lint_paths
from repro.analysis.cli import main
from repro.analysis.core import LintSession

SCHEMA = frozenset({"join.pairs", "join.candidates"})


def write_tree(root, files):
    (root / "pkg").mkdir(parents=True, exist_ok=True)
    (root / "pkg" / "__init__.py").write_text("")
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return root


def run(root, *codes, schema=SCHEMA):
    session = LintSession(select=list(codes), counter_schema=schema)
    return lint_paths([root], session=session)


# --------------------------------------------------------------------- WRK001
WRK_VIOLATION = {
    "pkg/work.py": """
        import random
        import time

        _WORKER_ENTRY_POINTS = ("worker_main",)

        CACHE = {}


        def clock_helper():
            return time.time()


        def rng_helper():
            return random.random()


        def cache_helper(key):
            CACHE[key] = 1


        def middle(task):
            clock_helper()
            rng_helper()


        def worker_main(task):
            middle(task)
            cache_helper(task)
    """,
}


class TestWorkerPurity:
    def test_transitive_primitives_are_flagged(self, tmp_path):
        root = write_tree(tmp_path, WRK_VIOLATION)
        findings = run(root, "WRK001")
        kinds = {f.message.split(": ", 1)[1].split(" in ")[0] for f in findings}
        assert kinds == {
            "wall-clock read",
            "unseeded/global RNG",
            "module-global write",
        }
        assert all(f.rule == "WRK001" for f in findings)

    def test_every_finding_carries_full_chain(self, tmp_path):
        root = write_tree(tmp_path, WRK_VIOLATION)
        for f in run(root, "WRK001"):
            assert f.trace, f
            # Chain shape: entry header, -> steps, !! primitive.
            assert "pkg.work.worker_main" in f.trace[0]
            assert "_WORKER_ENTRY_POINTS" in f.trace[0]
            assert f.trace[-1].startswith("!!")
            for step in f.trace[1:-1]:
                assert step.startswith("-> ")
        clock = next(f for f in run(root, "WRK001") if "time.time" in f.message)
        # worker_main -> middle -> clock_helper, two hops exactly.
        assert [s.split(" ")[1] for s in clock.trace[1:-1]] == [
            "pkg.work.middle",
            "pkg.work.clock_helper",
        ]

    def test_why_cli_reproduces_chain(self, tmp_path, capsys):
        root = write_tree(tmp_path, WRK_VIOLATION)
        for f in run(root, "WRK001"):
            rc = main([
                str(root), "--no-baseline", "--no-cache", "--select", "WRK001",
                "--why", "WRK001", f"work.py:{f.line}",
            ])
            out = capsys.readouterr().out
            assert rc == 0
            for step in f.trace:
                assert step in out

    def test_shared_memory_import_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/work.py": """
                _WORKER_ENTRY_POINTS = ("worker_main",)


                def helper():
                    from multiprocessing import shared_memory

                    return shared_memory


                def worker_main(task):
                    return helper()
            """,
        })
        findings = run(root, "WRK001")
        assert len(findings) == 1
        assert "shared-memory use" in findings[0].message

    def test_noqa_suppresses(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/work.py": """
                import time

                _WORKER_ENTRY_POINTS = ("worker_main",)


                def helper():
                    return time.time()  # repro: noqa[WRK001]


                def worker_main(task):
                    return helper()
            """,
        })
        assert run(root, "WRK001") == []

    def test_clean_worker_is_clean(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/work.py": """
                _WORKER_ENTRY_POINTS = ("worker_main",)


                def helper(xs):
                    return sorted(xs)


                def unreachable_impurity():
                    import time

                    return time.time()


                def worker_main(task):
                    return helper(task)
            """,
        })
        # The impure helper exists but is NOT reachable from the entry.
        assert run(root, "WRK001") == []


# --------------------------------------------------------------------- CTR002
class TestCounterKeyFlow:
    def test_literal_through_helper_param(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/c.py": """
                def bump(counters, key):
                    counters.add(key)


                def caller(counters):
                    bump(counters, "join.candidats")
            """,
        })
        findings = run(root, "CTR002")
        assert len(findings) == 1
        f = findings[0]
        assert "join.candidats" in f.message and "bump" in f.message
        assert any("counters.add" in step for step in f.trace)

    def test_transitive_two_hop_flow(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/c.py": """
                def sink(counters, key):
                    counters.add(key)


                def middle(counters, name):
                    sink(counters, name)


                def caller(counters):
                    middle(counters, "nope.key")
            """,
        })
        findings = run(root, "CTR002")
        assert len(findings) == 1
        assert "'nope.key'" in findings[0].message
        # Provenance walks caller param -> middle -> sink.
        assert any("middle" in step and "sink" in step for step in findings[0].trace)

    def test_registered_key_is_clean(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/c.py": """
                def bump(counters, key):
                    counters.add(key)


                def caller(counters):
                    bump(counters, "join.pairs")
            """,
        })
        assert run(root, "CTR002") == []

    def test_noqa_suppresses(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/c.py": """
                def bump(counters, key):
                    counters.add(key)


                def caller(counters):
                    bump(counters, "nope.key")  # repro: noqa[CTR002]
            """,
        })
        assert run(root, "CTR002") == []


# --------------------------------------------------------------------- DET004
class TestSetIdentityFlow:
    def test_set_return_iterated_ordered(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/d.py": """
                def make_ids(rows):
                    return {r for r in rows}


                def emit(rows):
                    out = []
                    for x in make_ids(rows):
                        out.append(x)
                    return out
            """,
        })
        findings = run(root, "DET004")
        assert len(findings) == 1
        assert "make_ids" in findings[0].message
        assert findings[0].trace

    def test_set_arg_into_ordered_param(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/d.py": """
                def emit(items):
                    return [x for x in items]


                def caller(rows):
                    return emit(set(rows))
            """,
        })
        findings = run(root, "DET004")
        assert len(findings) == 1
        assert "param 'items'" in findings[0].message

    def test_id_return_used_as_key(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/d.py": """
                def token(obj):
                    return id(obj)


                def index(objs):
                    table = {}
                    for o in objs:
                        table[token(o)] = o
                    return table
            """,
        })
        findings = run(root, "DET004")
        assert len(findings) == 1
        assert "id()" in findings[0].message

    def test_sorted_wrapper_is_clean(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/d.py": """
                def make_ids(rows):
                    return {r for r in rows}


                def emit(rows):
                    out = []
                    for x in sorted(make_ids(rows)):
                        out.append(x)
                    return out


                def total(rows):
                    return sum(x for x in make_ids(rows))
            """,
        })
        assert run(root, "DET004") == []

    def test_noqa_suppresses(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/d.py": """
                def make_ids(rows):
                    return {r for r in rows}


                def emit(rows):
                    return [x for x in make_ids(rows)]  # repro: noqa[DET004]
            """,
        })
        assert run(root, "DET004") == []


# --------------------------------------------------------------------- API002
class TestDeadExport:
    def test_unreferenced_export_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/mod.py": """
                __all__ = [
                    "used",
                    "dead",
                ]


                def used():
                    return 1


                def dead():
                    return 2
            """,
            "pkg/other.py": """
                from pkg.mod import used


                def caller():
                    return used()
            """,
        })
        findings = run(root, "API002")
        assert len(findings) == 1
        assert "'dead'" in findings[0].message
        assert '"dead",' in findings[0].snippet

    def test_package_init_is_exempt(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/mod.py": """
                def f():
                    return 1
            """,
        })
        (root / "pkg" / "__init__.py").write_text(
            "from .mod import f\n\n__all__ = [\"f\"]\n"
        )
        assert run(root, "API002") == []

    def test_star_import_counts_as_use(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/mod.py": """
                __all__ = ["anything"]


                def anything():
                    return 1
            """,
            "pkg/other.py": """
                from pkg.mod import *
            """,
        })
        assert run(root, "API002") == []

    def test_reexport_through_init_counts_as_use(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/mod.py": """
                __all__ = ["f"]


                def f():
                    return 1
            """,
        })
        (root / "pkg" / "__init__.py").write_text("from .mod import f\n")
        assert run(root, "API002") == []

    def test_noqa_suppresses(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/mod.py": """
                __all__ = [
                    "dead",  # repro: noqa[API002]
                ]


                def dead():
                    return 2
            """,
        })
        assert run(root, "API002") == []
