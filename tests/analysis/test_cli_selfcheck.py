"""The lint CLI (exit codes, formats, baseline workflow) and the
self-check: ``src/repro`` must lint clean — the repo's own contracts,
machine-enforced on the repo itself."""

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import RULES, lint_paths
from repro.analysis.cli import main

SRC_REPRO = Path(repro.__file__).parent


@pytest.fixture()
def violating_tree(tmp_path):
    (tmp_path / "mod.py").write_text(
        "import time\n"
        "def f(counters):\n"
        "    t0 = time.perf_counter()\n"
        "    counters.add('join.candidats')\n"
    )
    return tmp_path


class TestSelfCheck:
    def test_src_repro_lints_clean(self):
        findings = lint_paths([SRC_REPRO])
        assert findings == [], "\n".join(
            f"{f.path}:{f.line} {f.rule} {f.message}" for f in findings
        )

    def test_committed_baseline_is_empty(self):
        doc = json.loads((SRC_REPRO.parent.parent / "lint-baseline.json").read_text())
        assert doc == {"version": 1, "findings": []}

    def test_cli_acceptance_invocation(self, capsys):
        # The CI gate invocation: exit 0 over src/repro.
        assert main([str(SRC_REPRO)]) == 0
        assert "All checks passed" in capsys.readouterr().out


class TestCli:
    def test_exit_one_on_findings(self, violating_tree, capsys):
        assert main([str(violating_tree), "--no-baseline", "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "CLK001" in out and "CTR001" in out
        assert "2 findings." in out

    def test_json_format(self, violating_tree, capsys):
        assert (
            main([str(violating_tree), "--no-baseline", "--no-cache",
                  "--format", "json"])
            == 1
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"] == {"findings": 2, "stale": 0, "ok": False}
        assert {f["rule"] for f in doc["findings"]} == {"CLK001", "CTR001"}
        for f in doc["findings"]:
            assert set(f) >= {"rule", "path", "line", "col", "message", "fingerprint"}

    def test_github_format(self, violating_tree, capsys):
        assert (
            main([str(violating_tree), "--no-baseline", "--no-cache",
                  "--format", "github"])
            == 1
        )
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l]
        assert len(lines) == 2
        for line in lines:
            assert line.startswith("::error file=")
            assert ",line=" in line and ",col=" in line and ",title=" in line
        assert any("title=CLK001" in l for l in lines)
        # Clean tree: no workflow commands at all.
        (violating_tree / "mod.py").write_text("x = 1\n")
        assert (
            main([str(violating_tree), "--no-baseline", "--no-cache",
                  "--format", "github"])
            == 0
        )
        assert capsys.readouterr().out == ""

    def test_graph_dump(self, violating_tree, capsys):
        out_path = violating_tree / "graph.json"
        assert (
            main([str(violating_tree), "--no-baseline", "--no-cache",
                  "--graph-dump", str(out_path)])
            == 1
        )
        doc = json.loads(out_path.read_text())
        assert set(doc) == {"version", "modules", "functions", "entry_points"}
        assert "mod.f" in doc["functions"]

    def test_why_usage_error(self, violating_tree):
        with pytest.raises(SystemExit) as exc:
            main([str(violating_tree), "--no-cache", "--why", "CLK001", "mod.py"])
        assert exc.value.code == 2

    def test_why_per_file_rule(self, violating_tree, capsys):
        rc = main([str(violating_tree), "--no-baseline", "--no-cache",
                   "--why", "CLK001", "mod.py:3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "CLK001" in out and "per-file rule" in out

    def test_baseline_workflow(self, violating_tree, capsys, monkeypatch):
        monkeypatch.chdir(violating_tree)
        baseline = violating_tree / "baseline.json"
        # Adopt the debt, then the same tree gates clean …
        assert main(["mod.py", "--baseline", str(baseline), "--write-baseline"]) == 0
        assert main(["mod.py", "--baseline", str(baseline)]) == 0
        assert "(2 baselined)" in capsys.readouterr().out
        # … a new violation fails …
        (violating_tree / "mod.py").write_text(
            (violating_tree / "mod.py").read_text() + "    d[id(t0)] = 1\n"
        )
        assert main(["mod.py", "--baseline", str(baseline)]) == 1
        assert "DET001" in capsys.readouterr().out
        # … and fixing everything makes the baseline itself stale.
        (violating_tree / "mod.py").write_text("x = 1\n")
        assert main(["mod.py", "--baseline", str(baseline)]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_select_and_ignore_flags(self, violating_tree):
        assert main([str(violating_tree), "--no-baseline", "--select", "CLK001"]) == 1
        assert (
            main([str(violating_tree), "--no-baseline", "--ignore", "CLK001,CTR001"])
            == 0
        )

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "DET001",
            "DET002",
            "DET003",
            "CLK001",
            "CTR001",
            "API001",
            "SHM001",
            "WRK001",
            "CTR002",
            "DET004",
            "API002",
        ):
            assert code in out

    def test_unknown_rule_code_is_usage_error(self, violating_tree):
        with pytest.raises(SystemExit) as exc:
            main([str(violating_tree), "--select", "NOPE999"])
        assert exc.value.code == 2

    def test_missing_path_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["definitely/not/a/path.py"])
        assert exc.value.code == 2


class TestRegistry:
    def test_rule_pack_is_complete(self):
        assert set(RULES) == {
            "DET001",
            "DET002",
            "DET003",
            "CLK001",
            "CTR001",
            "API001",
            "SHM001",
            "WRK001",
            "CTR002",
            "DET004",
            "API002",
        }
        for code, rule in RULES.items():
            assert rule.code == code
            assert rule.name and rule.description

    def test_whole_program_split(self):
        whole = {c for c, r in RULES.items() if getattr(r, "whole_program", False)}
        assert whole == {"WRK001", "CTR002", "DET004", "API002"}
