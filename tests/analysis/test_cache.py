"""The incremental lint cache: hits, content invalidation, config scoping.

The sharp test here plants a sentinel finding directly in the cache
file: if a re-run reports it, the file was served from cache; after an
edit (new content SHA) the sentinel must vanish because the entry is
stale and the file is re-linted for real.
"""

import json
import textwrap
from pathlib import Path

from repro.analysis.cache import LintCache, lint_paths_cached
from repro.analysis.cli import main
from repro.analysis.core import LintSession

VIOLATION = textwrap.dedent(
    """
    import time


    def f():
        return time.perf_counter()
    """
)


def session():
    return LintSession(counter_schema=frozenset({"join.pairs"}))


class TestCacheRoundTrip:
    def test_warm_run_reproduces_cold_findings(self, tmp_path):
        (tmp_path / "mod.py").write_text(VIOLATION)
        cache_path = tmp_path / "cache.json"

        cache = LintCache.load(cache_path, session())
        cold = lint_paths_cached([tmp_path], session=session(), cache=cache)
        cache.save()

        cache2 = LintCache.load(cache_path, session())
        warm = lint_paths_cached([tmp_path], session=session(), cache=cache2)
        assert warm == cold
        assert len(warm) == 1 and warm[0].rule == "CLK001"

    def test_hit_is_served_from_cache_and_invalidated_by_edit(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(VIOLATION)
        cache_path = tmp_path / "cache.json"
        cache = LintCache.load(cache_path, session())
        lint_paths_cached([tmp_path], session=session(), cache=cache)
        cache.save()

        # Plant a sentinel finding in the cached entry for mod.py.
        doc = json.loads(cache_path.read_text())
        entry = doc["files"][str(target)]
        entry["findings"].append({
            "rule": "CLK001", "line": 1, "col": 0,
            "message": "SENTINEL-FROM-CACHE", "snippet": "import time",
            "trace": [],
        })
        cache_path.write_text(json.dumps(doc))

        cache = LintCache.load(cache_path, session())
        served = lint_paths_cached([tmp_path], session=session(), cache=cache)
        assert any(f.message == "SENTINEL-FROM-CACHE" for f in served)

        # Any edit changes the SHA: the stale entry must be discarded.
        target.write_text(VIOLATION + "\n# touched\n")
        cache = LintCache.load(cache_path, session())
        fresh = lint_paths_cached([tmp_path], session=session(), cache=cache)
        assert not any(f.message == "SENTINEL-FROM-CACHE" for f in fresh)
        assert len(fresh) == 1

    def test_fixing_the_violation_clears_findings(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(VIOLATION)
        cache_path = tmp_path / "cache.json"
        cache = LintCache.load(cache_path, session())
        assert lint_paths_cached([tmp_path], session=session(), cache=cache)
        cache.save()

        target.write_text("x = 1\n")
        cache = LintCache.load(cache_path, session())
        assert lint_paths_cached([tmp_path], session=session(), cache=cache) == []

    def test_rule_selection_change_drops_cache(self, tmp_path):
        (tmp_path / "mod.py").write_text(VIOLATION)
        cache_path = tmp_path / "cache.json"
        cache = LintCache.load(cache_path, session())
        lint_paths_cached([tmp_path], session=session(), cache=cache)
        cache.save()

        narrow = LintSession(
            select=["DET001"], counter_schema=frozenset({"join.pairs"})
        )
        cache2 = LintCache.load(cache_path, narrow)
        assert cache2.get_file(
            str(tmp_path / "mod.py"), "anything"
        ) is None  # config digest differs: stored entries unusable
        assert lint_paths_cached([tmp_path], session=narrow, cache=cache2) == []

    def test_exports_modules_are_never_cached(self, tmp_path):
        # API001 reads _EXPORTS target files, so carriers must re-lint
        # every run: no entry may exist for them.
        (tmp_path / "pkg").mkdir()
        init = tmp_path / "pkg" / "__init__.py"
        init.write_text('_EXPORTS = {"f": ("pkg.mod", "f")}\n')
        (tmp_path / "pkg" / "mod.py").write_text("def f():\n    return 1\n")
        cache_path = tmp_path / "cache.json"
        cache = LintCache.load(cache_path, session())
        lint_paths_cached([tmp_path], session=session(), cache=cache)
        cache.save()
        doc = json.loads(cache_path.read_text())
        assert str(init) not in doc["files"]
        assert str(tmp_path / "pkg" / "mod.py") in doc["files"]


class TestCacheCli:
    def test_no_cache_flag_skips_cache_file(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "mod.py").write_text("x = 1\n")
        assert main(["mod.py", "--no-baseline", "--no-cache"]) == 0
        assert not Path(".repro-lint-cache.json").exists()

    def test_default_cache_file_created_and_reused(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "mod.py").write_text(VIOLATION)
        assert main(["mod.py", "--no-baseline"]) == 1
        assert Path(".repro-lint-cache.json").exists()
        assert main(["mod.py", "--no-baseline"]) == 1  # warm run, same verdict
