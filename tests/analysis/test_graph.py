"""The project call-graph builder: symbol resolution, edges, entry points.

Each test writes a tiny package into ``tmp_path`` and asserts the exact
edges / entry points the builder derives — aliased imports, partial
application, self-resolved methods with inheritance, dispatch-argument
seeding, and an explicit mutual-recursion cycle pinning fixpoint/BFS
termination.
"""

import textwrap

from repro.analysis.graph import build_graph


def write_tree(root, files):
    (root / "pkg" / "__init__.py").parent.mkdir(parents=True, exist_ok=True)
    (root / "pkg" / "__init__.py").write_text("")
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return root


def edges_of(graph, qualname, kind=None):
    fn = graph.functions[qualname]
    return {e.target for e in fn.edges if kind is None or e.kind == kind}


class TestImports:
    def test_aliased_absolute_and_relative_imports(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/a.py": """
                def f():
                    return 1
            """,
            "pkg/b.py": """
                import pkg.a as mod
                from pkg.a import f as renamed

                def caller():
                    renamed()
                    return mod.f()
            """,
            "pkg/c.py": """
                from .a import f

                def caller():
                    return f()
            """,
        })
        graph = build_graph([tmp_path])
        assert edges_of(graph, "pkg.b.caller", "call") == {"pkg.a.f"}
        assert edges_of(graph, "pkg.c.caller", "call") == {"pkg.a.f"}

    def test_package_reexport_resolution(self, tmp_path):
        # ``from pkg import f`` where pkg/__init__ re-exports a.f must
        # resolve through the package's own import table.
        root = write_tree(tmp_path, {
            "pkg/a.py": """
                def f():
                    return 1
            """,
            "other.py": """
                from pkg import f

                def caller():
                    return f()
            """,
        })
        (root / "pkg" / "__init__.py").write_text("from .a import f\n")
        graph = build_graph([root])
        assert edges_of(graph, "other.caller", "call") == {"pkg.a.f"}


class TestPartialApplication:
    def test_functools_partial_records_call_edge(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/a.py": """
                def f(x):
                    return x
            """,
            "pkg/b.py": """
                import functools
                from functools import partial
                from pkg.a import f

                def via_module():
                    return functools.partial(f, 1)

                def via_name():
                    return partial(f, 2)
            """,
        })
        graph = build_graph([tmp_path])
        assert "pkg.a.f" in edges_of(graph, "pkg.b.via_module", "call")
        assert "pkg.a.f" in edges_of(graph, "pkg.b.via_name", "call")


class TestMethods:
    def test_self_method_resolves_to_override(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/d.py": """
                class Base:
                    def step(self):
                        return 1

                class Impl(Base):
                    def run(self):
                        return self.step()

                    def step(self):
                        return 2

                class Other(Base):
                    def go(self):
                        return self.step()
            """,
        })
        graph = build_graph([tmp_path])
        # Own override wins; no override walks project-known bases.
        assert "pkg.d.Impl.step" in edges_of(graph, "pkg.d.Impl.run", "call")
        assert "pkg.d.Base.step" not in edges_of(graph, "pkg.d.Impl.run")
        assert "pkg.d.Base.step" in edges_of(graph, "pkg.d.Other.go", "call")

    def test_local_constructed_instance_method(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/d.py": """
                class Worker:
                    def run(self):
                        return 1

                def driver():
                    w = Worker()
                    return w.run()
            """,
        })
        graph = build_graph([tmp_path])
        assert "pkg.d.Worker.run" in edges_of(graph, "pkg.d.driver", "call")


class TestDispatchArguments:
    def test_functions_in_dispatch_args_become_entry_points(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/e.py": """
                _DISPATCH_POINTS = ("run_tasks",)

                def run_tasks(fns):
                    return [fn() for fn in fns]
            """,
            "pkg/f.py": """
                from pkg.e import run_tasks

                def task_a():
                    return 1

                def not_shipped():
                    return 2

                def submit():
                    return run_tasks([task_a, lambda: 2])
            """,
        })
        graph = build_graph([tmp_path])
        seeded = {e.qualname for e in graph.entry_points}
        assert "pkg.f.task_a" in seeded
        assert any(q.startswith("pkg.f.submit.<lambda") for q in seeded)
        assert "pkg.f.not_shipped" not in seeded
        reason = next(
            e.reason for e in graph.entry_points if e.qualname == "pkg.f.task_a"
        )
        assert "pkg.e.run_tasks" in reason

    def test_method_dispatch_point_with_typed_receiver(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/e.py": """
                _DISPATCH_POINTS = ("Pool.run",)

                class Pool:
                    def run(self, fn):
                        return fn()
            """,
            "pkg/f.py": """
                from pkg.e import Pool

                def task():
                    return 1

                def submit():
                    pool = Pool()
                    return pool.run(task)
            """,
        })
        graph = build_graph([tmp_path])
        assert "pkg.f.task" in {e.qualname for e in graph.entry_points}


class TestWorkerEntryDeclarations:
    def test_bare_and_class_method_declarations(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/g.py": """
                _WORKER_ENTRY_POINTS = ("main", "Loop.run")

                def main():
                    return 1

                class Loop:
                    def run(self):
                        return 2
            """,
        })
        graph = build_graph([tmp_path])
        seeded = {e.qualname for e in graph.entry_points}
        assert seeded == {"pkg.g.main", "pkg.g.Loop.run"}


class TestFixpointTermination:
    def test_mutual_recursion_cycle_terminates_with_stable_chain(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/h.py": """
                _WORKER_ENTRY_POINTS = ("ping",)

                def ping(n):
                    return pong(n - 1)

                def pong(n):
                    return ping(n - 1)
            """,
        })
        graph = build_graph([tmp_path])
        parents = graph.reachable_from_entries()
        assert {"pkg.h.ping", "pkg.h.pong"} <= set(parents)
        chain = graph.chain(parents, "pkg.h.pong")
        assert [q for q, _ in chain] == ["pkg.h.ping", "pkg.h.pong"]
        # The entry itself has no incoming edge; the cycle-closing edge
        # back to ping must not extend the chain (BFS visits once).
        assert chain[0][1] is None
        assert chain[1][1].kind == "call"


class TestSerialization:
    def test_to_json_shape(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/g.py": """
                _WORKER_ENTRY_POINTS = ("main",)

                def helper():
                    return 1

                def main():
                    return helper()
            """,
        })
        doc = build_graph([tmp_path]).to_json()
        assert doc["version"] == 1
        assert doc["modules"]["pkg.g"]["worker_entry_points"] == ["main"]
        main_edges = doc["functions"]["pkg.g.main"]["edges"]
        assert {"target": "pkg.g.helper", "kind": "call",
                "line": main_edges[0]["line"]} in main_edges
        assert doc["entry_points"][0]["function"] == "pkg.g.main"
