"""Cluster specification tests."""

import pytest

from repro.cluster import (
    GB,
    PAPER_CONFIGS,
    ClusterConfig,
    EC2_G2_2XLARGE,
    WORKSTATION,
    ec2_config,
    ws_config,
)


class TestMachineSpecs:
    def test_workstation_matches_paper(self):
        # Dual 8-core CPUs, 128 GB (Section III.A).
        assert WORKSTATION.cores == 16
        assert WORKSTATION.memory_bytes == 128 * GB

    def test_ec2_matches_paper(self):
        # g2.2xlarge: 8 vCPUs, 15 GB.
        assert EC2_G2_2XLARGE.cores == 8
        assert EC2_G2_2XLARGE.memory_bytes == 15 * GB


class TestClusterConfig:
    def test_ws_is_single_node(self):
        ws = ws_config()
        assert ws.is_single_node
        assert ws.total_cores == 16
        assert ws.hdfs_replication == 1  # capped at node count

    def test_ec2_10_aggregates(self):
        c = ec2_config(10)
        assert c.num_nodes == 10
        assert c.total_cores == 80
        assert c.total_memory_bytes == 150 * GB  # the paper's 150 GB figure
        assert c.hdfs_replication == 3

    def test_memory_ordering_matches_paper(self):
        # Paper: WS (128 GB) and EC2-10 (150 GB) were sufficient for
        # SpatialSpark's full-dataset joins; EC2-8 (120 GB) and EC2-6 were not.
        configs = PAPER_CONFIGS()
        assert configs["EC2-10"].total_memory_bytes > configs["WS"].total_memory_bytes
        assert configs["WS"].total_memory_bytes > configs["EC2-8"].total_memory_bytes
        assert configs["EC2-8"].total_memory_bytes > configs["EC2-6"].total_memory_bytes

    def test_effective_parallelism(self):
        c = ec2_config(10)
        assert c.effective_parallelism(0) == 1
        assert c.effective_parallelism(5) == 5
        assert c.effective_parallelism(10_000) == 80

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            ClusterConfig(name="bad", machine=WORKSTATION, num_nodes=0)

    def test_aggregate_bandwidths_scale_with_nodes(self):
        assert ec2_config(10).aggregate_disk_read_bw == pytest.approx(
            10 * EC2_G2_2XLARGE.disk_read_bw
        )
        assert (
            ec2_config(10).aggregate_network_bw > ec2_config(6).aggregate_network_bw
        )

    def test_paper_configs_keys(self):
        assert set(PAPER_CONFIGS()) == {"WS", "EC2-10", "EC2-8", "EC2-6"}
