"""Cost model tests: each cost component behaves as designed."""

import pytest

from repro.cluster import (
    CostModel,
    CostParams,
    MB,
    PhaseRecord,
    SimClock,
    ec2_config,
    ws_config,
)
from repro.geometry import GEOS_COST_PROFILE, JTS_COST_PROFILE
from repro.metrics import Counters


def phase(counters: dict, tasks: int = 1, group: str = "join") -> PhaseRecord:
    return PhaseRecord(name="t", counters=Counters(counters), tasks=tasks, group=group)


class TestCpuComponent:
    def test_parallelism_divides_cpu_time(self):
        model = CostModel(ws_config())
        serial = model.phase_seconds(phase({"deser.records": 16_000_000}, tasks=1))
        parallel = model.phase_seconds(phase({"deser.records": 16_000_000}, tasks=16))
        assert serial == pytest.approx(16 * parallel)

    def test_parallelism_capped_by_cores(self):
        model = CostModel(ws_config())
        at_cap = model.phase_seconds(phase({"deser.records": 1_000_000}, tasks=16))
        beyond = model.phase_seconds(phase({"deser.records": 1_000_000}, tasks=1000))
        assert at_cap == pytest.approx(beyond)

    def test_engine_profile_overrides_defaults(self):
        jts = CostModel(ws_config(), engine_profile=JTS_COST_PROFILE)
        geos = CostModel(ws_config(), engine_profile=GEOS_COST_PROFILE)
        p = {"geom.pip_tests": 1_000_000}
        assert geos.phase_seconds(phase(p)) == pytest.approx(
            4 * jts.phase_seconds(phase(p))
        )

    def test_slower_cpu_costs_more(self):
        p = {"deser.records": 1_000_000}
        ws = CostModel(ws_config()).phase_seconds(phase(p, tasks=1))
        ec2 = CostModel(ec2_config(10)).phase_seconds(phase(p, tasks=1))
        assert ec2 > ws  # cpu_speed 0.85 < 1.0

    def test_unknown_counter_is_free(self):
        model = CostModel(ws_config())
        assert model.phase_seconds(phase({"mystery.ops": 1e9})) == 0.0


class TestIoComponent:
    def test_hdfs_read_uses_aggregate_bandwidth(self):
        p = {"hdfs.bytes_read": 1100 * MB * 10}
        ec10 = CostModel(ec2_config(10)).phase_seconds(phase(p))
        ec6 = CostModel(ec2_config(6)).phase_seconds(phase(p))
        assert ec10 < ec6  # more nodes, more aggregate disk bandwidth

    def test_hdfs_write_charges_replication(self):
        c = ec2_config(10)
        model = CostModel(c)
        write = model.phase_seconds(phase({"hdfs.bytes_written": 900 * MB}))
        read = model.phase_seconds(phase({"hdfs.bytes_read": 1100 * MB}))
        # 900MB written ×3 replicas at 90MB/s/node vs 1100MB read at 110MB/s/node.
        assert write == pytest.approx(3 * read)

    def test_ws_replication_is_one(self):
        model = CostModel(ws_config())
        secs = model.phase_seconds(phase({"hdfs.bytes_written": 220 * MB}))
        assert secs == pytest.approx(1.0)

    def test_localfs_is_single_node_bound(self):
        p = {"localfs.bytes_read": 1100 * MB}
        ec10 = CostModel(ec2_config(10)).phase_seconds(phase(p))
        ec6 = CostModel(ec2_config(6)).phase_seconds(phase(p))
        assert ec10 == pytest.approx(ec6)  # local steps do not scale


class TestShuffleComponent:
    def test_disk_shuffle_more_expensive_than_memory(self):
        model = CostModel(ec2_config(10))
        disk = model.phase_seconds(phase({"shuffle.bytes_disk": 1000 * MB}))
        mem = model.phase_seconds(phase({"shuffle.bytes_mem": 1000 * MB}))
        assert disk > 2 * mem

    def test_single_node_shuffle_has_no_network_term(self):
        ws = CostModel(ws_config())
        mem_only = ws.phase_seconds(phase({"shuffle.bytes_mem": 4000 * MB}))
        assert mem_only == pytest.approx(1.0)  # memory_copy_bw = 4000 MB/s

    def test_broadcast_scales_with_cluster(self):
        p = {"net.bytes_broadcast": 100 * MB}
        ws = CostModel(ws_config()).phase_seconds(phase(p))
        ec10 = CostModel(ec2_config(10)).phase_seconds(phase(p))
        assert ec10 > ws


class TestOverheads:
    def test_mr_job_overhead(self):
        params = CostParams(mr_job_overhead_s=18.0, mr_job_pernode_s=0.0)
        model = CostModel(ws_config(), params=params)
        assert model.phase_seconds(phase({"mr.jobs": 3})) == pytest.approx(54.0)

    def test_mr_job_pernode_overhead(self):
        params = CostParams(mr_job_overhead_s=10.0, mr_job_pernode_s=2.0)
        ws = CostModel(ws_config(), params=params)
        ec10 = CostModel(ec2_config(10), params=params)
        assert ws.phase_seconds(phase({"mr.jobs": 1})) == pytest.approx(12.0)
        assert ec10.phase_seconds(phase({"mr.jobs": 1})) == pytest.approx(30.0)

    def test_task_waves(self):
        model = CostModel(ws_config(), params=CostParams(mr_task_overhead_s=1.0))
        one_wave = model.phase_seconds(phase({"mr.tasks": 16}))
        two_waves = model.phase_seconds(phase({"mr.tasks": 17}))
        assert one_wave == pytest.approx(1.0)
        assert two_waves == pytest.approx(2.0)

    def test_spark_stage_cheaper_than_mr_job(self):
        params = CostParams()
        model = CostModel(ws_config(), params=params)
        stage = model.phase_seconds(phase({"spark.stages": 1}))
        job = model.phase_seconds(phase({"mr.jobs": 1}))
        assert stage < job / 10


class TestClockIntegration:
    def test_cost_clock_fills_all_phases(self):
        clock = SimClock()
        clock.record(phase({"deser.records": 1_000_000}, group="index_a"))
        clock.record(phase({"hdfs.bytes_read": 280 * MB}, group="join"))
        model = CostModel(ws_config())
        model.cost_clock(clock)
        assert all(p.seconds > 0 for p in clock.phases)
        assert clock.total_seconds == pytest.approx(
            clock.group_seconds("index_a") + clock.group_seconds("join")
        )
        assert set(clock.breakdown()) == {"index_a", "join"}

    def test_merged_counters(self):
        clock = SimClock()
        clock.record(phase({"deser.records": 5}))
        clock.record(phase({"deser.records": 7, "hdfs.bytes_read": 3}))
        merged = clock.merged_counters()
        assert merged["deser.records"] == 12
        assert merged["hdfs.bytes_read"] == 3
