"""The feedback layer: measured spans in, monotonically better constants out.

``Calibrator.fit`` is keep-if-better, so refitting can never make the
mean relative error on the recorded observations worse — the property
that lets a long-running deployment feed every traced run back without
risking drift.  Profiles are explicit values: JSON round-trippable, and
materializable into :class:`CostParams` for the planner.
"""

import pytest

from repro import spatial_join
from repro.cluster.costmodel import CostParams
from repro.data import census_blocks, taxi_points
from repro.plan import CalibrationProfile, Calibrator


def traced_run(system="SpatialSpark", n=300, seed=3, **kwargs):
    return spatial_join(
        taxi_points(n, seed=seed), census_blocks(max(n // 5, 20), seed=seed + 1),
        system=system, cluster="WS", seed=7, trace=True, **kwargs,
    )


@pytest.fixture(scope="module")
def observed():
    cal = Calibrator()
    for system in ("SpatialSpark", "SpatialHadoop", "HadoopGIS"):
        assert cal.observe_report(traced_run(system)) > 0
    return cal


class TestObservation:
    def test_untraced_report_yields_nothing(self):
        cal = Calibrator()
        report = spatial_join(
            taxi_points(200, seed=3), census_blocks(40, seed=4),
            system="SpatialSpark", seed=7,
        )
        assert cal.observe_report(report) == 0
        assert not cal.observations

    def test_observations_are_charged(self, observed):
        assert observed.counters["plan.observations"] == len(
            observed.observations
        )
        assert len(observed.observations) > 0


class TestMonotonicImprovement:
    def test_fit_never_increases_error(self, observed):
        profile = CalibrationProfile()
        errors = [observed.error(profile)]
        # Repeated refits with the incumbent as base: keep-if-better makes
        # the training-error sequence monotonically non-increasing.
        for _ in range(4):
            profile = observed.fit(base=profile)
            errors.append(observed.error(profile))
        for before, after in zip(errors, errors[1:]):
            assert after <= before + 1e-12
        assert profile.training_error == pytest.approx(errors[-1])

    def test_fit_beats_or_matches_uncalibrated(self, observed):
        fitted = observed.fit()
        assert observed.error(fitted) <= observed.error(
            CalibrationProfile()
        ) + 1e-12
        assert fitted.observations == len(observed.observations)

    def test_growing_observation_set_stays_monotonic(self):
        cal = Calibrator()
        profile = CalibrationProfile()
        for seed in (3, 11):
            cal.observe_report(traced_run(seed=seed))
            refit = cal.fit(base=profile)
            assert cal.error(refit) <= cal.error(profile) + 1e-12
            profile = refit


class TestProfileValue:
    def test_json_round_trip(self, observed):
        fitted = observed.fit()
        clone = CalibrationProfile.from_json(fitted.to_json())
        assert clone == fitted

    def test_cost_params_materialization(self):
        profile = CalibrationProfile(
            cpu_scale=2.0, mr_task_overhead_s=5.0, spark_task_overhead_s=0.5
        )
        params = profile.cost_params()
        base = CostParams()
        assert params.mr_task_overhead_s == 5.0
        assert params.spark_task_overhead_s == 0.5
        assert params.cpu_cost("geom.pip_tests") == pytest.approx(
            2.0 * base.cpu_cost("geom.pip_tests")
        )

    def test_calibrated_params_feed_the_planner(self, observed):
        from repro.data.stats import describe
        from repro.plan import plan_query

        params = observed.fit().cost_params()
        left = taxi_points(300, seed=3)
        right = census_blocks(60, seed=4)
        chosen = plan_query(describe(left), describe(right), "intersects",
                            "WS", system="SpatialSpark", params=params)
        assert chosen.system == "SpatialSpark"
