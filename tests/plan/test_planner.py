"""Cost-based planner: decision quality, determinism, result invariance.

The acceptance matrix of the planner tentpole:

* the auto-chosen plan's *measured* simulated seconds never lose to any
  hand-pinned fixed configuration (beyond a small tolerance) across a
  workload × cluster × system grid;
* plans are a deterministic pure function of the statistics;
* result pairs are bit-identical whether the configuration came from the
  planner, from explicit kwargs reproducing the plan, or from a frozen
  ``Plan`` object — the plan moves work, never results.
"""

import pytest

from repro import spatial_join
from repro.data import census_blocks, taxi_points, tiger_edges
from repro.data.stats import describe
from repro.experiments.runner import resolve_cluster
from repro.plan import (
    GRANULARITIES,
    PLAN_SYSTEMS,
    EstimateContext,
    Plan,
    enumerate_plans,
    estimate_plan,
    plan_query,
    rank_plans,
)

#: auto measured seconds may exceed the best fixed config by this factor.
TOLERANCE = 1.02

SYSTEMS = list(PLAN_SYSTEMS)

WORKLOADS = {
    "taxi-census": lambda: (taxi_points(400, seed=3), census_blocks(80, seed=4)),
    "edges-census": lambda: (tiger_edges(240, seed=5), census_blocks(60, seed=6)),
}

#: Fixed configurations a user could pin by hand, per system.
FIXED = {
    "SpatialSpark": [
        {"broadcast_join": False},
        {"broadcast_join": True},
        {"broadcast_join": False, "local_algorithm": "plane_sweep"},
    ],
    "SpatialHadoop": [
        {"local_algorithm": "plane_sweep"},
        {"local_algorithm": "sync_rtree"},
        {"partitioner": "grid"},
    ],
    "HadoopGIS": [
        {"local_algorithm": "indexed_nested_loop"},
        {"local_algorithm": "plane_sweep"},
        {"partitioner": "bsp"},
    ],
}


def run(left, right, *, system, cluster, plan, system_kwargs=None):
    return spatial_join(
        left, right, system=system, cluster=cluster, seed=9,
        plan=plan, system_kwargs=system_kwargs,
    )


class TestPlannerNeverLoses:
    @pytest.mark.parametrize("cluster", ["WS", "EC2-10"])
    @pytest.mark.parametrize("system", SYSTEMS)
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_auto_at_most_best_fixed(self, workload, system, cluster):
        left, right = WORKLOADS[workload]()
        auto = run(left, right, system=system, cluster=cluster, plan="auto")
        assert auto.ok
        for kwargs in FIXED[system]:
            fixed = run(left, right, system=system, cluster=cluster,
                        plan=None, system_kwargs=kwargs)
            assert fixed.pairs == auto.pairs, kwargs
            assert (
                auto.clock.total_seconds
                <= fixed.clock.total_seconds * TOLERANCE + 1e-9
            ), (f"{system}@{cluster}: auto "
                f"{auto.clock.total_seconds:.2f}s loses to {kwargs} "
                f"{fixed.clock.total_seconds:.2f}s")


class TestDeterminism:
    def test_same_stats_same_plan(self):
        left, right = WORKLOADS["taxi-census"]()
        stats_l, stats_r = describe(left), describe(right)
        for system in SYSTEMS:
            first = plan_query(stats_l, stats_r, "intersects", "WS",
                               system=system)
            second = plan_query(stats_l, stats_r, "intersects", "WS",
                                system=system)
            assert first == second
            assert first.fingerprint() == second.fingerprint()

    def test_ranking_is_total_and_stable(self):
        left, right = WORKLOADS["taxi-census"]()
        ranked = rank_plans(describe(left), describe(right), "intersects",
                            "WS", system="SpatialSpark")
        seconds = [est.seconds for est, _ in ranked]
        assert seconds == sorted(seconds)
        assert len({plan for _, plan in ranked}) == len(ranked)


class TestResultInvariance:
    @pytest.mark.parametrize("system", SYSTEMS)
    def test_planner_vs_explicit_kwargs_bit_identical(self, system):
        left, right = WORKLOADS["taxi-census"]()
        chosen = plan_query(describe(left), describe(right), "intersects",
                            "WS", system=system)
        via_auto = run(left, right, system=system, cluster="WS", plan="auto")
        via_plan = run(left, right, system=system, cluster="WS", plan=chosen)
        via_kwargs = run(left, right, system=system, cluster="WS", plan=None,
                         system_kwargs=chosen.system_kwargs())
        assert via_auto.pairs == via_plan.pairs == via_kwargs.pairs
        assert via_plan.clock.total_seconds == pytest.approx(
            via_kwargs.clock.total_seconds
        )


class TestCandidateSpace:
    def test_enumerate_respects_system_constraints(self):
        for system in SYSTEMS:
            plans = enumerate_plans(system)
            assert plans, system
            for plan in plans:
                assert plan.system == system
                assert plan.n_partitions in GRANULARITIES
                if plan.strategy == "broadcast":
                    assert plan.system == "SpatialSpark"
            assert len({p.fingerprint() for p in plans}) == len(plans)

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            enumerate_plans("Sedona")
        with pytest.raises(ValueError):
            Plan(system="Sedona")

    def test_broadcast_blocked_by_memory_guard(self):
        left, right = WORKLOADS["taxi-census"]()
        stats_l, stats_r = describe(left), describe(right)
        # A build side far larger than the cluster's usable memory makes
        # every broadcast candidate infinitely expensive.
        import dataclasses

        huge = dataclasses.replace(stats_r, total_bytes=1 << 45)
        ctx = EstimateContext(stats_a=stats_l, stats_b=huge,
                              cluster=resolve_cluster("WS"))
        est = estimate_plan(Plan(system="SpatialSpark",
                                 strategy="broadcast"), ctx)
        assert est.seconds == float("inf")
        chosen = plan_query(stats_l, huge, "intersects", "WS",
                            system="SpatialSpark")
        assert chosen.strategy == "partitioned"
