"""Hadoop Streaming layer tests: pipe accounting and failure injection."""

import pytest

from repro.cluster import GB, SimClock, ec2_config, ws_config
from repro.hdfs import SimulatedHDFS
from repro.mapreduce import (
    MapReduceJob,
    PipePolicy,
    StreamingPipeError,
    make_streaming_hook,
    parse_charge,
    pipe_capacity_for,
    serialize_charge,
)
from repro.metrics import Counters


class TestPipeCapacity:
    def test_capacity_scales_with_node_memory(self):
        ws_cap = pipe_capacity_for(ws_config())
        ec2_cap = pipe_capacity_for(ec2_config(10))
        assert ws_cap == pytest.approx(0.075 * 128 * GB)
        assert ec2_cap == pytest.approx(0.075 * 15 * GB)
        assert ws_cap > ec2_cap

    def test_capacity_independent_of_cluster_size(self):
        # Pipes are a per-node phenomenon: more nodes do not widen one pipe.
        assert pipe_capacity_for(ec2_config(10)) == pipe_capacity_for(ec2_config(6))


class TestPipePolicy:
    def test_within_capacity_passes(self):
        policy = PipePolicy(capacity_bytes=1000, byte_scale=1.0)
        policy.check("job", "map", 999)  # no raise

    def test_over_capacity_raises(self):
        policy = PipePolicy(capacity_bytes=1000, byte_scale=1.0)
        with pytest.raises(StreamingPipeError, match="broken pipe"):
            policy.check("job", "reduce", 1001)

    def test_byte_scale_converts_to_logical(self):
        # 10 actual bytes at scale 1000 = 10,000 logical bytes.
        policy = PipePolicy(capacity_bytes=5000, byte_scale=1000.0)
        with pytest.raises(StreamingPipeError) as err:
            policy.check("job", "map", 10)
        assert err.value.logical_bytes == 10_000

    def test_default_policy_never_fails(self):
        PipePolicy().check("job", "map", 10**18)


class TestStreamingHook:
    def _run_streaming_job(self, policy):
        counters = Counters()
        hdfs = SimulatedHDFS(block_size=1000, counters=counters)
        clock = SimClock()
        hdfs.write_file("/in", ["x" * 20] * 5)
        job = MapReduceJob(
            "stream",
            hdfs=hdfs,
            counters=counters,
            clock=clock,
            inputs=["/in"],
            map_task=lambda data: [(r, 1) for r in data.records],
            reduce_task=lambda k, vs: [k],
            output_path="/out",
            streaming_hook=make_streaming_hook(counters, policy, "stream"),
        )
        return job, counters

    def test_processes_and_bytes_counted(self):
        job, counters = self._run_streaming_job(PipePolicy())
        job.run()
        assert counters["streaming.processes"] >= 2  # ≥1 map + ≥1 reduce task
        assert counters["pipe.bytes"] > 0

    def test_map_task_overflow_fails_job(self):
        job, _ = self._run_streaming_job(PipePolicy(capacity_bytes=50))
        with pytest.raises(StreamingPipeError) as err:
            job.run()
        assert err.value.kind == "map"

    def test_reduce_task_overflow_fails_job(self):
        # Map volume per task is fine, but one reducer sees everything.
        counters = Counters()
        hdfs = SimulatedHDFS(block_size=30, counters=counters)
        clock = SimClock()
        hdfs.write_file("/in", ["x" * 20] * 6)  # 5 blocks-ish, small map tasks
        policy = PipePolicy(capacity_bytes=100)
        job = MapReduceJob(
            "stream",
            hdfs=hdfs,
            counters=counters,
            clock=clock,
            inputs=["/in"],
            map_task=lambda data: [("all", r) for r in data.records],
            reduce_task=lambda k, vs: vs,
            output_path="/out",
            num_reducers=1,
            streaming_hook=make_streaming_hook(counters, policy, "stream"),
        )
        with pytest.raises(StreamingPipeError) as err:
            job.run()
        assert err.value.kind == "reduce"


class TestTextTax:
    def test_parse_and_serialize_charges(self):
        counters = Counters()
        parse_charge(counters, 100, 5000)
        serialize_charge(counters, 50, 2500)
        assert counters["parse.records"] == 100
        assert counters["parse.bytes"] == 5000
        assert counters["serialize.records"] == 50
        assert counters["serialize.bytes"] == 2500
