"""MapReduce engine tests: word count, map-only, splits, accounting."""

import pytest

from repro.cluster import SimClock
from repro.hdfs import SimulatedHDFS
from repro.mapreduce import BlockInputFormat, InputFormat, MapReduceJob, Split
from repro.metrics import Counters


def make_env(block_size=64):
    counters = Counters()
    hdfs = SimulatedHDFS(block_size=block_size, counters=counters)
    clock = SimClock()
    return hdfs, counters, clock


def word_count_job(hdfs, counters, clock, **kw):
    def map_task(data):
        for line in data.records:
            for word in line.split():
                yield (word, 1)

    def reduce_task(key, values):
        yield (key, sum(values))

    return MapReduceJob(
        "wordcount",
        hdfs=hdfs,
        counters=counters,
        clock=clock,
        inputs=["/in"],
        map_task=map_task,
        reduce_task=reduce_task,
        output_path="/out",
        **kw,
    )


class TestWordCount:
    def test_correct_result(self):
        hdfs, counters, clock = make_env()
        hdfs.write_file("/in", ["a b a", "b c", "a"])
        result = word_count_job(hdfs, counters, clock).run()
        out = dict(hdfs.read_all("/out"))
        assert out == {"a": 3, "b": 2, "c": 1}
        assert result.output_records == 3
        assert result.map_output_records == 6

    def test_multiple_blocks_multiple_splits(self):
        hdfs, counters, clock = make_env(block_size=4)
        hdfs.write_file("/in", ["a b", "b c", "c d", "d e"])
        result = word_count_job(hdfs, counters, clock).run()
        assert result.splits == 4
        out = dict(hdfs.read_all("/out"))
        assert out == {"a": 1, "b": 2, "c": 2, "d": 2, "e": 1}

    def test_num_reducers_respected(self):
        hdfs, counters, clock = make_env()
        hdfs.write_file("/in", ["a b c d e f"])
        result = word_count_job(hdfs, counters, clock, num_reducers=3).run()
        assert result.reducers == 3
        assert dict(hdfs.read_all("/out"))["a"] == 1


class TestMapOnly:
    def test_map_only_skips_shuffle(self):
        hdfs, counters, clock = make_env()
        hdfs.write_file("/in", ["x", "yy", "zzz"])
        job = MapReduceJob(
            "lengths",
            hdfs=hdfs,
            counters=counters,
            clock=clock,
            inputs=["/in"],
            map_task=lambda data: [len(r) for r in data.records],
            output_path="/out",
        )
        result = job.run()
        assert hdfs.read_all("/out") == [1, 2, 3]
        assert result.reducers == 0
        assert counters["shuffle.bytes_disk"] == 0
        phase_names = [p.name for p in clock.phases]
        assert "lengths.map" in phase_names
        assert not any("shuffle" in n for n in phase_names)

    def test_output_discarded_when_no_path(self):
        hdfs, counters, clock = make_env()
        hdfs.write_file("/in", ["x"])
        job = MapReduceJob(
            "noout",
            hdfs=hdfs,
            counters=counters,
            clock=clock,
            inputs=["/in"],
            map_task=lambda data: data.records,
        )
        job.run()
        assert not hdfs.exists("/out")


class TestAccounting:
    def test_job_and_task_counters(self):
        hdfs, counters, clock = make_env(block_size=4)
        hdfs.write_file("/in", ["a b", "b c", "c d"])
        word_count_job(hdfs, counters, clock, num_reducers=2).run()
        assert counters["mr.jobs"] == 1
        assert counters["mr.tasks"] == 3 + 2

    def test_shuffle_bytes_charged(self):
        hdfs, counters, clock = make_env()
        hdfs.write_file("/in", ["a b c"])
        word_count_job(hdfs, counters, clock).run()
        assert counters["shuffle.bytes_disk"] > 0
        assert counters["sort.ops"] > 0

    def test_phase_records_grouped(self):
        hdfs, counters, clock = make_env()
        hdfs.write_file("/in", ["a b"])
        word_count_job(hdfs, counters, clock, group="index_a").run()
        assert {p.group for p in clock.phases} == {"index_a"}
        names = [p.name for p in clock.phases]
        assert names == ["wordcount.map", "wordcount.shuffle", "wordcount.reduce"]

    def test_input_read_charged_to_map_phase(self):
        hdfs, counters, clock = make_env()
        hdfs.write_file("/in", ["abcdef"])
        counters["hdfs.bytes_read"] = 0
        word_count_job(hdfs, counters, clock).run()
        map_phase = clock.phases[0]
        assert map_phase.counters["hdfs.bytes_read"] == 7


class TestCustomInputFormat:
    def test_paired_block_splits(self):
        """A SpatialHadoop-style input format can pair blocks of two files."""
        hdfs, counters, clock = make_env(block_size=8)
        hdfs.write_file("/left", ["l1", "l2", "l3", "l4"])
        hdfs.write_file("/right", ["r1", "r2"])

        class PairFormat(InputFormat):
            def get_splits(self, fs, inputs):
                left, right = inputs
                out = []
                for lb, _, _ in fs.blocks_meta(left):
                    for rb, _, _ in fs.blocks_meta(right):
                        out.append(
                            Split(parts=[(left, lb), (right, rb)], info={"pair": (lb, rb)})
                        )
                return out

        seen = []

        def map_task(data):
            seen.append((data.split.info["pair"], len(data.part_records)))
            yield from ((r, 1) for part in data.part_records for r in part)

        job = MapReduceJob(
            "pairs",
            hdfs=hdfs,
            counters=counters,
            clock=clock,
            inputs=["/left", "/right"],
            map_task=map_task,
            input_format=PairFormat(),
            output_path=None,
        )
        result = job.run()
        # /left has 2 blocks of 2 records, /right 1 block: 2 paired splits.
        assert result.splits == 2
        assert all(parts == 2 for _, parts in seen)

    def test_default_format_one_split_per_block(self):
        hdfs, counters, clock = make_env(block_size=8)
        hdfs.write_file("/a", ["aa", "bb", "cc"])
        splits = BlockInputFormat().get_splits(hdfs, ["/a"])
        assert len(splits) == hdfs.num_blocks("/a")
