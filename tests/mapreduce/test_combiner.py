"""Combiner tests: map-side aggregation reduces shuffle volume."""

import pytest

from repro.cluster import SimClock
from repro.hdfs import SimulatedHDFS
from repro.mapreduce import MapReduceJob
from repro.metrics import Counters


def wordcount(combiner=None, block_size=64):
    counters = Counters()
    hdfs = SimulatedHDFS(block_size=block_size, counters=counters)
    hdfs.write_file("/in", ["alpha alpha beta alpha"] * 24)
    MapReduceJob(
        "wc",
        hdfs=hdfs, counters=counters, clock=SimClock(),
        inputs=["/in"],
        map_task=lambda d: ((w, 1) for line in d.records for w in line.split()),
        reduce_task=lambda k, vs: [(k, sum(vs))],
        combiner=combiner,
        output_path="/out",
    ).run()
    return counters, dict(hdfs.read_all("/out"))


def sum_combiner(key, values):
    yield (key, sum(values))


class TestCombiner:
    def test_result_unchanged(self):
        _, plain = wordcount()
        _, combined = wordcount(sum_combiner)
        assert plain == combined == {"alpha": 72, "beta": 24}

    def test_shuffle_volume_reduced(self):
        plain_counters, _ = wordcount()
        combined_counters, _ = wordcount(sum_combiner)
        assert (
            combined_counters["shuffle.bytes_disk"]
            < 0.5 * plain_counters["shuffle.bytes_disk"]
        )

    def test_combine_counters(self):
        counters, _ = wordcount(sum_combiner)
        assert counters["mr.combine_in"] > counters["mr.combine_out"] > 0

    def test_combiner_ignored_for_map_only_jobs(self):
        counters = Counters()
        hdfs = SimulatedHDFS(block_size=64, counters=counters)
        hdfs.write_file("/in", ["x y"])
        MapReduceJob(
            "maponly",
            hdfs=hdfs, counters=counters, clock=SimClock(),
            inputs=["/in"],
            map_task=lambda d: [len(r) for r in d.records],
            combiner=sum_combiner,  # no reduce phase: must be a no-op
            output_path="/out",
        ).run()
        assert hdfs.read_all("/out") == [3]
        assert counters["mr.combine_in"] == 0

    def test_non_idempotent_combiner_semantics(self):
        # A mean-style combiner must carry (sum, count) pairs to stay
        # correct — verify the machinery supports structured values.
        counters = Counters()
        hdfs = SimulatedHDFS(block_size=32, counters=counters)
        hdfs.write_file("/in", [f"k {i}" for i in range(10)])

        def map_task(data):
            for line in data.records:
                key, value = line.split()
                yield (key, (int(value), 1))

        def combine(key, pairs):
            total = sum(s for s, _ in pairs)
            count = sum(c for _, c in pairs)
            yield (key, (total, count))

        def reduce_task(key, pairs):
            total = sum(s for s, _ in pairs)
            count = sum(c for _, c in pairs)
            yield (key, total / count)

        MapReduceJob(
            "mean",
            hdfs=hdfs, counters=counters, clock=SimClock(),
            inputs=["/in"], map_task=map_task, reduce_task=reduce_task,
            combiner=combine, output_path="/out",
        ).run()
        assert dict(hdfs.read_all("/out")) == {"k": pytest.approx(4.5)}
