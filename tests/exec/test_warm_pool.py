"""The warm worker pool: reuse, determinism, degradation, breakage.

The pool's value proposition is forking once and staying warm; its risk
is exactly that persistence — worker state drifting across stages, a
dead worker poisoning later runs, or a platform without ``fork`` silently
producing different results.  These tests pin each of those edges:

* the same forked workers serve many stages and many backend runs;
* trace fingerprints and ledgers through the warm pool match serial;
* ``ProcessBackend`` without fork degrades loudly — the
  ``exec.backend_fallback`` counter is charged and the run report
  carries a warning;
* a task exception surfaces at its exact index without killing the run;
* a broken pool raises :class:`PoolBrokenError` and the registry
  replaces it on the next request.
"""

import os

import pytest

from repro import spatial_join
from repro.data import census_blocks, taxi_points
from repro.exec import ProcessBackend
from repro.exec.shm import live_segment_names
from repro.exec.shm_pool import (
    PoolBrokenError,
    WarmPool,
    get_pool,
    release_pool,
    reserve_key,
)
from repro.metrics import Counters

pytestmark = pytest.mark.skipif(
    not ProcessBackend.available(), reason="requires fork"
)


def worker_pids(pool: WarmPool) -> tuple:
    return tuple(proc.pid for proc in pool._procs)


def charge_tasks(shared, n=6):
    def make(i):
        def body():
            shared.add("work.ops", float(i + 1))
            return (os.getpid(), i * i)

        return body

    return [make(i) for i in range(n)]


class TestPoolReuse:
    def test_workers_survive_across_stages(self):
        pool = WarmPool(2)
        try:
            pids = worker_pids(pool)
            seen = set()
            for _ in range(3):
                shared = Counters()
                outcomes = pool.run_stage(
                    charge_tasks(shared), shared, [(0, 3), (3, 6)]
                )
                assert [o.index for o in outcomes] == list(range(6))
                seen.update(o.result[0] for o in outcomes)
                assert worker_pids(pool) == pids  # nobody re-forked
            # Every stage ran inside the original forked workers.
            assert seen <= set(pids)
            assert pool.stats["stages"] == 3
        finally:
            pool.shutdown()

    def test_backend_runs_share_one_pool(self):
        before = set(live_segment_names())
        key = reserve_key()
        try:
            backend = ProcessBackend(2, pool_key=key)
            shared = Counters()
            backend.run_tasks("a", charge_tasks(shared), shared)
            pids = worker_pids(get_pool(key, 2))
            backend.run_tasks("b", charge_tasks(shared), shared)
            assert worker_pids(get_pool(key, 2)) == pids
            # A second backend instance on the same key reuses the pool
            # too — this is how the query service shares its warm pool
            # across per-query environments.
            other = ProcessBackend(2, pool_key=key)
            other.run_tasks("c", charge_tasks(shared), shared)
            assert worker_pids(get_pool(key, 2)) == pids
        finally:
            release_pool(key, os.getpid())
        # Releasing the pool reclaimed everything this test created
        # (other modules' warm pools may legitimately still hold arenas).
        assert set(live_segment_names()) - before == set()

    def test_worker_count_change_replaces_pool(self):
        key = reserve_key()
        try:
            first = get_pool(key, 2)
            pids = worker_pids(first)
            second = get_pool(key, 3)
            assert second is not first
            assert second.workers == 3
            assert set(worker_pids(second)).isdisjoint(pids)
        finally:
            release_pool(key, os.getpid())


class TestWarmPoolDeterminism:
    def run(self, backend, trace=True):
        return spatial_join(
            taxi_points(400, seed=21),
            census_blocks(50, seed=22),
            system="SpatialHadoop",
            workers=1 if backend == "serial" else 3,
            backend=backend,
            seed=5,
            trace=trace,
        )

    def test_fingerprints_and_ledgers_match_serial(self):
        serial = self.run("serial")
        # Two consecutive process runs: the second rides the pool the
        # first warmed up, and both must match serial bit for bit.
        warm1 = self.run("process")
        warm2 = self.run("process")
        for warm in (warm1, warm2):
            assert warm.pairs == serial.pairs
            assert dict(warm.counters) == dict(serial.counters)
            assert warm.trace.fingerprint() == serial.trace.fingerprint()

    def test_untraced_then_traced_runs_stay_correct(self):
        # Worker trace state is pinned per stage; interleaving traced and
        # untraced runs over the same warm pool must not bleed state.
        quiet = self.run("process", trace=False)
        traced = self.run("process", trace=True)
        serial = self.run("serial", trace=True)
        assert quiet.trace is None
        assert quiet.pairs == serial.pairs
        assert traced.trace.fingerprint() == serial.trace.fingerprint()


class TestFallback:
    def test_no_fork_degrades_to_threads_loudly(self, monkeypatch):
        monkeypatch.setattr(
            ProcessBackend, "available", staticmethod(lambda: False)
        )
        report = spatial_join(
            taxi_points(200, seed=31),
            census_blocks(30, seed=32),
            system="SpatialHadoop",
            workers=3,
            backend="process",
        )
        assert report.ok
        assert report.counters.get("exec.backend_fallback") == 1.0
        assert report.warnings
        assert any("fallback" in w or "thread" in w for w in report.warnings)

    def test_fallback_charged_once_per_backend(self, monkeypatch):
        monkeypatch.setattr(
            ProcessBackend, "available", staticmethod(lambda: False)
        )
        backend = ProcessBackend(2)
        shared = Counters()
        backend.run_tasks("a", charge_tasks(shared), shared)
        backend.run_tasks("b", charge_tasks(shared), shared)
        assert shared.get("exec.backend_fallback") == 1.0
        assert len(backend.warnings) == 1

    def test_healthy_backend_never_charges_fallback(self):
        backend = ProcessBackend(2)
        try:
            shared = Counters()
            backend.run_tasks("a", charge_tasks(shared), shared)
            assert shared.get("exec.backend_fallback") is None
            assert backend.warnings == ()
        finally:
            backend.close()


class TestErrorPaths:
    def test_task_error_surfaces_at_its_index(self):
        pool = WarmPool(2)
        try:
            shared = Counters()

            def make(i):
                def body():
                    if i == 4:
                        raise ValueError(f"task {i} exploded")
                    return i

                return body

            outcomes = pool.run_stage(
                [make(i) for i in range(6)], shared, [(0, 3), (3, 6)]
            )
            assert [o.index for o in outcomes] == list(range(6))
            failed = [o for o in outcomes if o.error is not None]
            assert len(failed) == 1
            assert failed[0].index == 4
            assert "task 4 exploded" in str(failed[0].error)
            assert not pool.broken  # a task error is data, not breakage
        finally:
            pool.shutdown()

    def test_dead_worker_breaks_pool_and_registry_replaces_it(self):
        before = set(live_segment_names())
        key = reserve_key()
        try:
            pool = get_pool(key, 2)
            shared = Counters()

            def die():
                os._exit(13)  # simulate a worker crash mid-stage

            with pytest.raises(PoolBrokenError):
                pool.run_stage([die, die], shared, [(0, 1), (1, 2)])
            assert pool.broken
            # Teardown reclaimed everything this pool created.
            assert set(live_segment_names()) - before == set()

            fresh = get_pool(key, 2)
            assert fresh is not pool
            outcomes = fresh.run_stage(
                charge_tasks(shared, n=4), shared, [(0, 2), (2, 4)]
            )
            assert all(o.error is None for o in outcomes)
        finally:
            release_pool(key, os.getpid())

    def test_stage_on_shut_down_pool_raises(self):
        pool = WarmPool(2)
        pool.shutdown()
        with pytest.raises(PoolBrokenError):
            pool.run_stage([lambda: 1], Counters(), [(0, 1)])
