"""The shared-memory data plane: round trips, ownership, leak audits.

Three contracts under test:

* **Bit-identity** — every ``GeometryBatch`` plane (any dtype/shape,
  including empty batches and degenerate rings) survives
  ``attach_shared → worker map → rebuild`` unchanged, whether the worker
  is simulated in-process or a real forked warm-pool worker.
* **Single ownership** — the driver's :class:`ShmRegistry` is the only
  segment owner: memoized ships create one segment, dead source arrays
  reclaim theirs, and ``close()`` unlinks everything.
* **No leaks** — after normal runs, task errors and pool shutdown, this
  process owns zero live segments and ``/dev/shm`` holds no file this
  process created.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import ProcessBackend
from repro.exec.shm import (
    RESULT_MIN_BYTES,
    SHARE_MIN_BYTES,
    AttachCache,
    ResultArena,
    ShmRegistry,
    live_segment_names,
)
from repro.geometry import GeometryBatch, Point, PolyLine, Polygon
from repro.metrics import Counters

pytestmark = pytest.mark.skipif(
    not ProcessBackend.available(), reason="requires fork"
)


def shm_files() -> set:
    """Files this process (or its pools) created in /dev/shm."""
    prefix = f"reproshm_{os.getpid()}_"
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith(prefix)}
    except FileNotFoundError:  # pragma: no cover - no tmpfs mount
        return set()


@pytest.fixture
def no_shm_leaks():
    """Assert the test created no net segments or /dev/shm files.

    Delta-based on purpose: warm pools owned by *other* test modules
    legitimately keep arena segments alive for the whole session, so a
    global emptiness check would be order-dependent.
    """
    segments_before = set(live_segment_names())
    files_before = shm_files()
    yield
    assert set(live_segment_names()) - segments_before == set()
    assert shm_files() - files_before == set()


def batch_planes(batch):
    return (
        batch.kinds,
        batch.coords,
        batch.ring_offsets,
        batch.geom_rings,
        batch.ids,
        batch.mbrs.data,
    )


def assert_batches_bit_identical(rebuilt, original):
    for got, want in zip(batch_planes(rebuilt), batch_planes(original)):
        assert got.dtype == want.dtype
        assert got.shape == want.shape
        assert np.array_equal(got, want)


def roundtrip_in_process(batch):
    """attach_shared → (simulated) worker map → rebuild, same process."""
    registry = ShmRegistry()
    cache = AttachCache()
    try:
        refs = batch.attach_shared(registry)

        def attach(ref):
            from repro.exec.shm import ArrayRef

            return cache.get(ref) if isinstance(ref, ArrayRef) else ref

        return GeometryBatch.from_shared(refs, attach)
    finally:
        cache.close()
        registry.close()


coord = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False,
    width=64,
)


@st.composite
def geometries(draw):
    kind = draw(st.sampled_from(["point", "polyline", "polygon"]))
    if kind == "point":
        return Point(draw(coord), draw(coord))
    if kind == "polyline":
        n = draw(st.integers(2, 6))
        return PolyLine([(draw(coord), draw(coord)) for _ in range(n)])
    cx, cy = draw(coord), draw(coord)
    r = draw(st.floats(0.1, 10.0))
    n = draw(st.integers(3, 7))
    angles = np.linspace(0, 2 * np.pi, n, endpoint=False)
    return Polygon([(cx + r * np.cos(a), cy + r * np.sin(a)) for a in angles])


class TestBatchRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(geometries(), min_size=0, max_size=25))
    def test_any_batch_roundtrips_bit_identically(self, geoms):
        batch = GeometryBatch.from_geometries(geoms)
        rebuilt = roundtrip_in_process(batch)
        assert_batches_bit_identical(rebuilt, batch)
        if geoms:
            assert rebuilt.to_geometries() == geoms

    def test_empty_batch(self):
        batch = GeometryBatch.empty()
        rebuilt = roundtrip_in_process(batch)
        assert_batches_bit_identical(rebuilt, batch)
        assert len(rebuilt) == 0

    def test_degenerate_rings(self):
        # Zero-area polygon (all vertices collinear) and a zero-length
        # polyline segment: shape/dtype edge cases, not validity checks.
        geoms = [
            Polygon([(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]),
            PolyLine([(5.0, 5.0), (5.0, 5.0)]),
            Point(-0.0, 0.0),
        ]
        batch = GeometryBatch.from_geometries(geoms)
        rebuilt = roundtrip_in_process(batch)
        assert_batches_bit_identical(rebuilt, batch)

    def test_large_batch_planes_become_segments(self):
        # Enough coordinates that coords/mbrs cross SHARE_MIN_BYTES.
        n = SHARE_MIN_BYTES  # 4096 points -> 64 KiB coords
        xs = np.linspace(0.0, 1.0, n)
        batch = GeometryBatch.from_geometries(
            [Point(x, -x) for x in xs]
        )
        registry = ShmRegistry()
        cache = AttachCache()
        try:
            from repro.exec.shm import ArrayRef

            refs = batch.attach_shared(registry)
            assert any(isinstance(r, ArrayRef) for r in refs)
            rebuilt = GeometryBatch.from_shared(
                refs,
                lambda r: cache.get(r) if isinstance(r, ArrayRef) else r,
            )
            assert_batches_bit_identical(rebuilt, batch)
            # Mapped planes are read-only: the shared plane is immutable.
            assert not rebuilt.coords.flags.writeable
        finally:
            cache.close()
            registry.close()

    def test_roundtrip_through_real_worker(self, no_shm_leaks):
        # The full pipeline: driver ships a batch through the warm pool,
        # the forked worker maps the planes and sends back a checksum and
        # the raw coords; both must match bit for bit.
        n = SHARE_MIN_BYTES
        xs = np.linspace(-5.0, 5.0, n)
        batch = GeometryBatch.from_geometries([Point(x, 2 * x) for x in xs])
        backend = ProcessBackend(2)
        shared = Counters()
        try:
            def inspect(b=batch):
                return (
                    len(b),
                    b.coords.copy(),
                    bool(b.coords.flags.writeable),
                )

            outcomes = backend.run_tasks(
                "inspect", [inspect, inspect], shared
            )
            for outcome in outcomes:
                assert outcome.error is None
                length, coords, writeable = outcome.result
                assert length == len(batch)
                assert np.array_equal(coords, batch.coords)
                assert writeable is False  # worker saw the mapped plane
        finally:
            backend.close()


class TestShmRegistry:
    def test_memoized_share(self):
        registry = ShmRegistry()
        try:
            arr = np.arange(SHARE_MIN_BYTES, dtype=np.float64)
            ref1 = registry.share(arr)
            ref2 = registry.share(arr)
            assert ref1 is not None and ref1 == ref2
            assert registry.segments_created == 1
        finally:
            registry.close()

    def test_small_and_object_arrays_inline(self):
        registry = ShmRegistry()
        try:
            assert registry.share(np.arange(4)) is None
            obj = np.empty(SHARE_MIN_BYTES, dtype=object)
            obj[:] = "x"
            assert registry.share(obj) is None
            assert registry.segments_created == 0
        finally:
            registry.close()

    def test_dead_source_array_reclaims_segment(self):
        registry = ShmRegistry()
        try:
            arr = np.arange(SHARE_MIN_BYTES, dtype=np.float64)
            ref = registry.share(arr)
            assert ref.name in live_segment_names()
            del arr
            names = registry.drain_forgets()
            assert ref.name in names
            assert ref.name not in live_segment_names()
        finally:
            registry.close()

    def test_close_unlinks_everything(self):
        registry = ShmRegistry()
        refs = [
            registry.share(np.full(SHARE_MIN_BYTES, i, dtype=np.float64))
            for i in range(3)
        ]
        registry.close()
        registry.close()  # idempotent
        for ref in refs:
            assert ref.name not in live_segment_names()

    def test_roundtrip_values(self):
        registry = ShmRegistry()
        cache = AttachCache()
        try:
            for dtype in (np.float64, np.int64, np.int8, np.bool_):
                arr = np.arange(SHARE_MIN_BYTES).astype(dtype)
                ref = registry.share(arr)
                view = cache.get(ref)
                assert view.dtype == arr.dtype
                assert np.array_equal(view, arr)
                assert not view.flags.writeable
        finally:
            cache.close()
            registry.close()


class TestResultArena:
    def _arena(self, size=1 << 16):
        from repro.exec.shm import _create_segment, _unlink_segment

        seg = _create_segment(size)
        return seg, ResultArena(seg.buf, size), _unlink_segment

    def test_put_read_roundtrip_and_alignment(self):
        seg, arena, unlink = self._arena()
        try:
            a = np.arange(600, dtype=np.float64)
            b = np.arange(300, dtype=np.int64) * -1
            off_a = arena.put(a)
            off_b = arena.put(b)
            assert off_a % ResultArena.ALIGN == 0
            assert off_b % ResultArena.ALIGN == 0
            assert np.array_equal(arena.read(off_a, a.dtype.str, a.shape), a)
            assert np.array_equal(arena.read(off_b, b.dtype.str, b.shape), b)
        finally:
            unlink(seg)

    def test_overflow_returns_none_and_tallies(self):
        seg, arena, unlink = self._arena(size=1 << 12)
        try:
            big = np.zeros(1 << 12, dtype=np.float64)  # 8x the arena
            assert arena.put(big) is None
            assert arena.overflow == big.nbytes
            arena.reset()
            assert arena.overflow == 0 and arena.used == 0
        finally:
            unlink(seg)


class TestNoLeaks:
    def make_tasks(self, shared, batch, n=6, fail_at=None):
        def make(i):
            def body():
                shared.add("work.ops", float(batch.coords[i, 0]))
                if fail_at == i:
                    raise RuntimeError("modelled task failure")
                # Big result array: exercises the result arena.
                return np.full(RESULT_MIN_BYTES, i, dtype=np.float64)

            return body

        return [make(i) for i in range(n)]

    def big_batch(self):
        xs = np.linspace(0.0, 1.0, SHARE_MIN_BYTES)
        return GeometryBatch.from_geometries([Point(x, x) for x in xs])

    def test_normal_run_leaves_no_segments(self, no_shm_leaks):
        batch = self.big_batch()
        backend = ProcessBackend(3)
        outcomes = backend.run_tasks(
            "stage", self.make_tasks(Counters(), batch), Counters()
        )
        assert all(o.error is None for o in outcomes)
        backend.close()

    def test_task_error_leaves_no_segments(self, no_shm_leaks):
        batch = self.big_batch()
        backend = ProcessBackend(3)
        outcomes = backend.run_tasks(
            "stage", self.make_tasks(Counters(), batch, fail_at=2), Counters()
        )
        errs = [o for o in outcomes if o.error is not None]
        assert len(errs) == 1 and errs[0].index == 2
        backend.close()

    def test_pool_shutdown_unlinks_everything(self, no_shm_leaks):
        from repro.exec.shm_pool import WarmPool

        before = set(live_segment_names())
        pool = WarmPool(2, arena_bytes=1 << 16)
        batch = self.big_batch()
        shared = Counters()
        fns = self.make_tasks(shared, batch, n=4)
        outcomes = pool.run_stage(fns, shared, [(0, 2), (2, 4)])
        assert len(outcomes) == 4
        assert set(live_segment_names()) - before  # arenas + planes live
        pool.shutdown()
        pool.shutdown()  # idempotent

    def test_arena_overflow_grows_and_still_cleans_up(self, no_shm_leaks):
        from repro.exec.shm_pool import WarmPool

        # Tiny arenas force the inline-overflow path on stage 1; stage 2
        # must see grown arenas and both must return bit-identical data.
        pool = WarmPool(2, arena_bytes=1 << 12)
        shared = Counters()

        def make(i):
            def body():
                return np.full(1 << 12, i, dtype=np.float64)  # 32 KiB

            return body

        fns = [make(i) for i in range(4)]
        first = pool.run_stage(fns, shared, [(0, 2), (2, 4)])
        assert pool.stats["arena_overflow_bytes"] > 0
        second = pool.run_stage(fns, shared, [(0, 2), (2, 4)])
        for a, b in zip(first, second):
            assert np.array_equal(a.result, b.result)
            assert a.result.dtype == b.result.dtype
        pool.shutdown()
