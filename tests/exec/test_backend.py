"""Unit tests for the pluggable task execution backends.

The contract under test: *any* backend produces bit-identical shared
counters, result ordering, side outputs and failure behaviour — only
wall-clock time may differ.
"""

import pytest

from repro.exec import (
    BACKENDS,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    emit,
    merge_outcomes,
    resolve_backend,
    run_task,
)
from repro.metrics import Counters

ALL_BACKENDS = [SerialBackend(), ThreadBackend(4), ProcessBackend(4)]


def backend_ids(backend):
    return backend.name


def make_tasks(shared, n=8):
    """Task bodies charging the shared counters and returning their index."""

    def make(i):
        def body():
            shared.add("work.ops", i + 1)
            shared.add("work.tasks")
            return i * 10

        return body

    return [make(i) for i in range(n)]


class TestRunTask:
    def test_captures_result_and_counters(self):
        shared = Counters()

        def body():
            shared.add("x", 3)  # repro: noqa[CTR001]
            return "done"

        outcome = run_task(0, body, shared)
        assert outcome.result == "done"
        assert outcome.error is None
        assert outcome.counters == {"x": 3}
        assert shared == {}  # nothing leaked into the shared instance
        assert outcome.seconds >= 0.0

    def test_captures_error_after_partial_charges(self):
        shared = Counters()

        def body():
            shared.add("x", 2)  # repro: noqa[CTR001]
            raise ValueError("boom")

        outcome = run_task(0, body, shared)
        assert isinstance(outcome.error, ValueError)
        assert outcome.counters == {"x": 2}
        assert shared == {}

    def test_unrelated_counters_not_redirected(self):
        shared, other = Counters(), Counters()

        def body():
            other.add("y")

        run_task(0, body, shared)
        assert other == {"y": 1}

    def test_merge_inside_task_is_redirected(self):
        shared = Counters()

        def body():
            shared.merge({"a": 1, "b": 2})

        outcome = run_task(0, body, shared)
        assert outcome.counters == {"a": 1, "b": 2}
        assert shared == {}


class TestEmit:
    def test_emit_outside_task_raises(self):
        with pytest.raises(RuntimeError, match="outside a task"):
            emit("k", 1)

    def test_emit_travels_in_outcome(self):
        shared = Counters()

        def body():
            emit("part", "payload")
            emit("part", "payload2")

        outcome = run_task(0, body, shared)
        assert outcome.side == [("part", "payload"), ("part", "payload2")]


class TestMergeOutcomes:
    def test_merges_in_index_order(self):
        shared = Counters()
        tasks = make_tasks(shared, n=6)
        outcomes = [run_task(i, fn, shared) for i, fn in enumerate(tasks)]
        results, side = merge_outcomes(outcomes, shared)
        assert results == [0, 10, 20, 30, 40, 50]
        assert side == {}
        assert shared == {"work.ops": 21, "work.tasks": 6}

    def test_error_reraised_after_merging_failing_scratch(self):
        shared = Counters()

        def good():
            shared.add("n")  # repro: noqa[CTR001]

        def bad():
            shared.add("n")  # repro: noqa[CTR001]
            raise RuntimeError("task failed")

        outcomes = [run_task(0, good, shared), run_task(1, bad, shared)]
        with pytest.raises(RuntimeError, match="task failed"):
            merge_outcomes(outcomes, shared)
        # Both the preceding task's and the failing task's charges landed,
        # exactly like a serial loop that died on task 1.
        assert shared == {"n": 2}

    def test_side_outputs_keyed_and_ordered(self):
        shared = Counters()

        def make(i):
            def body():
                emit("k", i)

            return body

        outcomes = [run_task(i, make(i), shared) for i in range(4)]
        _, side = merge_outcomes(outcomes, shared)
        assert side == {"k": [0, 1, 2, 3]}


@pytest.mark.parametrize("backend", ALL_BACKENDS, ids=backend_ids)
class TestBackendEquivalence:
    def test_results_and_counters_identical_to_serial(self, backend):
        shared = Counters()
        outcomes = backend.run_tasks("stage", make_tasks(shared, 8), shared)
        results, _ = merge_outcomes(outcomes, shared)
        assert results == [i * 10 for i in range(8)]
        assert shared == {"work.ops": 36, "work.tasks": 8}

    def test_error_surfaces_at_failing_index(self, backend):
        shared = Counters()

        def make(i):
            def body():
                shared.add("n")  # repro: noqa[CTR001]
                if i == 3:
                    raise ValueError(f"task {i} died")
                return i

            return body

        outcomes = backend.run_tasks("stage", [make(i) for i in range(6)], shared)
        with pytest.raises(ValueError, match="task 3 died"):
            merge_outcomes(outcomes, shared)
        # Tasks 0..3 merged; parallel backends may have *run* later tasks,
        # but their scratches are discarded by the failing merge.
        assert shared == {"n": 4}

    def test_empty_task_list(self, backend):
        shared = Counters()
        assert backend.run_tasks("stage", [], shared) == []

    def test_profile_rows_recorded(self, backend):
        shared = Counters()
        backend.profile.clear()
        backend.run_tasks("alpha", make_tasks(shared, 4), shared)
        summary = backend.profile_summary()
        assert summary["backend"] == backend.name
        assert summary["phases"][-1]["label"] == "alpha"
        assert summary["phases"][-1]["tasks"] == 4
        assert summary["task_seconds"] >= 0.0


class TestNestedDispatch:
    def test_stage_inside_task_runs_inline(self):
        shared = Counters()
        backend = ThreadBackend(4)

        def outer():
            inner = backend.run_tasks(
                "inner",
                [lambda: shared.add("inner.ops") for _ in range(3)],  # repro: noqa[CTR001]
                shared,
            )
            merge_outcomes(inner, shared)
            shared.add("outer.ops")  # repro: noqa[CTR001]

        outcomes = backend.run_tasks("outer", [outer, outer], shared)
        merge_outcomes(outcomes, shared)
        assert shared == {"inner.ops": 6, "outer.ops": 2}


class TestResolveBackend:
    def test_default_is_serial(self):
        assert resolve_backend().name == "serial"
        assert resolve_backend(None, 1).name == "serial"

    def test_workers_pick_parallel(self):
        backend = resolve_backend(None, 4)
        assert backend.name in ("process", "thread")
        assert backend.workers == 4

    def test_explicit_names(self):
        for name in BACKENDS:
            assert resolve_backend(name, 2).name == name

    def test_instance_passthrough(self):
        backend = ThreadBackend(2)
        assert resolve_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            resolve_backend("mpi", 4)

    def test_serial_forces_one_worker(self):
        assert SerialBackend(8).workers == 1
