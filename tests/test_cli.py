"""CLI tests (python -m repro ...)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "taxi-nycb", "SpatialSpark"])
        assert args.config == "WS"
        assert args.exec_records == 2500

    @pytest.mark.parametrize(
        "command", ["table1", "table2", "table3", "fig1", "headlines", "calibrate"]
    )
    def test_subcommands_parse(self, command):
        assert build_parser().parse_args([command]).command == command

    def test_one_default_seed_everywhere(self):
        # Regression: run/table2/table3 defaulted to seed 1 while validate
        # and run_experiment used 0, so the same nominal command produced
        # different numbers depending on the entry point.
        from inspect import signature

        from repro.experiments.runner import DEFAULT_SEED, run_experiment

        parser = build_parser()
        for argv in (
            ["run", "taxi-nycb", "SpatialSpark"],
            ["table2"],
            ["table3"],
            ["headlines"],
            ["report"],
            ["validate"],
        ):
            assert parser.parse_args(argv).seed == DEFAULT_SEED, argv
        assert signature(run_experiment).parameters["seed"].default == DEFAULT_SEED

    def test_workers_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["run", "taxi-nycb", "SpatialSpark", "--workers", "4"]
        )
        assert args.workers == 4 and args.backend is None
        args = parser.parse_args(["table2", "--workers", "2", "--backend", "thread"])
        assert args.workers == 2 and args.backend == "thread"
        args = parser.parse_args(["table3"])
        assert args.workers == 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "taxi-nycb", "SpatialSpark", "--backend", "mpi"]
            )


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "169,720,892" in out
        assert "6.9 GB" in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "HadoopGIS" in out and "functional" in out

    def test_run_success(self, capsys):
        code = main(
            ["run", "taxi1m-nycb", "SpatialSpark", "EC2-10", "--exec-records", "600"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ok" in out and "TOT=" in out

    def test_run_failure_cell(self, capsys):
        code = main(
            ["run", "taxi-nycb", "SpatialSpark", "EC2-6", "--exec-records", "600"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED (oom)" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "osm-osm", "SpatialSpark"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_unknown_system(self, capsys):
        assert main(["run", "taxi-nycb", "Sedona"]) == 2
        assert "unknown system" in capsys.readouterr().err

    def test_run_with_workers(self, capsys):
        code = main(
            ["run", "taxi-nycb", "SpatialSpark", "EC2-10",
             "--exec-records", "600", "--workers", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ok" in out and "TOT=" in out

    def test_run_workers_match_serial(self, capsys):
        argv = ["run", "taxi-nycb", "SpatialHadoop", "EC2-10",
                "--exec-records", "500"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--workers", "3", "--backend", "process"]) == 0
        assert capsys.readouterr().out == serial_out
