"""CLI tests (python -m repro ...)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "taxi-nycb", "SpatialSpark"])
        assert args.config == "WS"
        assert args.exec_records == 2500

    @pytest.mark.parametrize(
        "command", ["table1", "table2", "table3", "fig1", "headlines", "calibrate"]
    )
    def test_subcommands_parse(self, command):
        assert build_parser().parse_args([command]).command == command


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "169,720,892" in out
        assert "6.9 GB" in out

    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "HadoopGIS" in out and "functional" in out

    def test_run_success(self, capsys):
        code = main(
            ["run", "taxi1m-nycb", "SpatialSpark", "EC2-10", "--exec-records", "600"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ok" in out and "TOT=" in out

    def test_run_failure_cell(self, capsys):
        code = main(
            ["run", "taxi-nycb", "SpatialSpark", "EC2-6", "--exec-records", "600"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED (oom)" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "osm-osm", "SpatialSpark"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_unknown_system(self, capsys):
        assert main(["run", "taxi-nycb", "Sedona"]) == 2
        assert "unknown system" in capsys.readouterr().err
