"""Simulated HDFS tests: blocks, accounting, failure modes."""

import pytest

from repro.geometry import Point
from repro.hdfs import HdfsError, SimulatedHDFS, estimate_size
from repro.metrics import Counters


def make_fs(block_size=100):
    counters = Counters()
    return SimulatedHDFS(block_size=block_size, counters=counters), counters


class TestSizeEstimation:
    def test_strings_exact(self):
        assert estimate_size("hello") == 6

    def test_numbers(self):
        assert estimate_size(3) == estimate_size(2.5) == 12

    def test_geometry_uses_serialized_size(self):
        p = Point(1, 2)
        assert estimate_size(p) == p.serialized_size()

    def test_containers_sum(self):
        assert estimate_size(("ab", 1)) > estimate_size("ab")
        assert estimate_size({"k": "v"}) > 0
        assert estimate_size([1, 2, 3]) == 3 * 12 + 3

    def test_none_and_bool(self):
        assert estimate_size(None) == 1
        assert estimate_size(True) == 2

    def test_fallback_str(self):
        class Weird:
            def __str__(self):
                return "xyz"

        assert estimate_size(Weird()) == 4


class TestWriteRead:
    def test_roundtrip(self):
        fs, _ = make_fs()
        fs.write_file("/data/a", ["r1", "r2", "r3"])
        assert fs.read_all("/data/a") == ["r1", "r2", "r3"]

    def test_blocks_split_on_size(self):
        fs, _ = make_fs(block_size=25)
        fs.write_file("/f", ["x" * 10] * 5)  # each record 11 bytes
        assert fs.num_blocks("/f") == 3  # 2+2+1 records
        assert fs.num_records("/f") == 5

    def test_oversized_record_gets_own_block(self):
        fs, _ = make_fs(block_size=10)
        fs.write_file("/f", ["tiny", "x" * 50, "tiny2"])
        assert fs.num_blocks("/f") == 3
        assert fs.read_all("/f") == ["tiny", "x" * 50, "tiny2"]

    def test_empty_file_has_one_empty_block(self):
        fs, _ = make_fs()
        fs.write_file("/empty", [])
        assert fs.num_blocks("/empty") == 1
        assert fs.read_all("/empty") == []

    def test_no_overwrite_by_default(self):
        fs, _ = make_fs()
        fs.write_file("/f", ["a"])
        with pytest.raises(HdfsError):
            fs.write_file("/f", ["b"])
        fs.write_file("/f", ["b"], overwrite=True)
        assert fs.read_all("/f") == ["b"]

    def test_missing_path(self):
        fs, _ = make_fs()
        with pytest.raises(HdfsError):
            fs.read_all("/nope")
        with pytest.raises(HdfsError):
            fs.delete("/nope")

    def test_list_and_delete(self):
        fs, _ = make_fs()
        fs.write_file("/a/1", ["x"])
        fs.write_file("/a/2", ["y"])
        fs.write_file("/b/1", ["z"])
        assert fs.list_files("/a") == ["/a/1", "/a/2"]
        fs.delete("/a/1")
        assert not fs.exists("/a/1")


class TestBlockAccess:
    def test_read_block(self):
        fs, _ = make_fs(block_size=25)
        fs.write_file("/f", [f"rec{i:02d}xxx" for i in range(6)])
        block = fs.read_block("/f", 0)
        assert len(block) >= 1
        with pytest.raises(HdfsError):
            fs.read_block("/f", 99)

    def test_blocks_meta_free(self):
        fs, counters = make_fs(block_size=25)
        fs.write_file("/f", ["x" * 10] * 5)
        before = counters["hdfs.bytes_read"]
        meta = fs.blocks_meta("/f")
        assert counters["hdfs.bytes_read"] == before  # metadata read is free
        assert sum(m[1] for m in meta) == 5

    def test_attach_aux(self):
        fs, counters = make_fs()
        fs.write_file("/f", ["a", "b"])
        fs.attach_block_aux("/f", 0, aux={"index": True}, nbytes=64)
        block = fs.read_block("/f", 0)
        assert block.aux == {"index": True}
        assert block.total_bytes == block.nbytes + 64


class TestAccounting:
    def test_write_charges_bytes(self):
        fs, counters = make_fs()
        fs.write_file("/f", ["abcd", "efgh"])  # 5 + 5 bytes
        assert counters["hdfs.bytes_written"] == 10
        assert counters["hdfs.records_written"] == 2

    def test_read_charges_bytes(self):
        fs, counters = make_fs()
        fs.write_file("/f", ["abcd"])
        fs.read_all("/f")
        assert counters["hdfs.bytes_read"] == 5
        assert counters["hdfs.records_read"] == 1

    def test_block_read_charges_only_block(self):
        fs, counters = make_fs(block_size=25)
        fs.write_file("/f", ["x" * 10] * 4)
        counters["hdfs.bytes_read"] = 0
        fs.read_block("/f", 0)
        assert counters["hdfs.bytes_read"] == 22  # one block: 2 records

    def test_local_roundtrip_charges_both_sides(self):
        fs, counters = make_fs()
        fs.write_file("/f", ["abcd"])
        records = fs.copy_to_local("/f")
        assert records == ["abcd"]
        assert counters["localfs.bytes_written"] == 5
        fs.copy_from_local("/g", ["wxyz"])
        assert counters["localfs.bytes_read"] == 5
        assert fs.read_all("/g") == ["wxyz"]

    def test_geometry_records_use_wkt_size(self):
        fs, counters = make_fs(block_size=10**6)
        p = Point(1, 2)
        fs.write_file("/pts", [p, p])
        assert counters["hdfs.bytes_written"] == 2 * p.serialized_size()
