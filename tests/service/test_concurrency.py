"""Concurrency determinism of the service front-end.

The contract: a batch of queries against shared handles returns
bit-identical results — pairs, per-query counters, service-ledger
totals, trace fingerprints — at any dispatch concurrency.  These suites
run with the cache disabled so every query actually executes (with the
cache on, which request of an identical in-flight pair reports the miss
is unspecified; totals stay deterministic and are covered separately).
"""

import pytest

from repro.data.synthetic import census_blocks, taxi_points
from repro.service import Query, SpatialQueryService

SEED = 7
CONCURRENCIES = (8, 64)
BOXES = (
    (-74.00, 40.70, -73.95, 40.75),
    (-73.99, 40.72, -73.90, 40.80),
    (-74.02, 40.65, -73.97, 40.71),
)


def make_service(trace=False):
    return SpatialQueryService(
        cluster="WS", seed=SEED, cache_entries=0, trace=trace
    )


def make_queries(a, b, n=64):
    """A deterministic 64-query mix: joins (both predicates) + ranges."""
    out = []
    for i in range(n):
        kind = i % 4
        if kind == 0:
            out.append(Query("join", a, b))
        elif kind == 1:
            out.append(Query("join", a, b, predicate="within_distance:0.01"))
        elif kind == 2:
            out.append(Query("range", a, box=BOXES[i % len(BOXES)]))
        else:
            out.append(Query("join", a, b, predicate="within_distance:0.005"))
    return out


def result_view(r):
    """The comparable, timing-free view of one query result."""
    if hasattr(r, "pairs"):
        return ("join", r.status, r.pairs, tuple(sorted(r.counters.items())))
    return ("range", r.ids, tuple(sorted(r.counters.items())))


def run_batch(concurrency):
    """One fresh service: prepare both sides, run the 64-query mix.

    A fresh service per concurrency level keeps the ledger's float
    accumulation base identical across runs, so the post-batch ledger
    states — not just the per-query counters — compare bit-for-bit.
    """
    with make_service() as svc:
        a = svc.prepare(
            taxi_points(300, seed=11), system="SpatialHadoop", roles=("a",)
        )
        b = svc.prepare(
            census_blocks(40, seed=12), system="SpatialHadoop", roles=("b",)
        )
        results = svc.execute(make_queries(a, b), concurrency=concurrency)
        return [result_view(r) for r in results], dict(svc.counters)


class TestInterleavedDeterminism:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_batch(concurrency=1)

    @pytest.mark.parametrize("concurrency", CONCURRENCIES)
    def test_results_bit_identical_to_serial(self, serial, concurrency):
        serial_views, serial_ledger = serial
        views, ledger = run_batch(concurrency)
        assert views == serial_views
        assert ledger == serial_ledger

    def test_ledger_counts_queries(self, serial):
        _, serial_ledger = serial
        assert serial_ledger["service.queries"] == 64


class TestTraceDeterminism:
    def run_traced(self, concurrency):
        svc = make_service(trace=True)
        a = svc.prepare(
            taxi_points(200, seed=11), system="SpatialHadoop", roles=("a",)
        )
        b = svc.prepare(
            census_blocks(30, seed=12), system="SpatialHadoop", roles=("b",)
        )
        svc.execute(make_queries(a, b, n=16), concurrency=concurrency)
        svc.close()
        return svc.trace_root

    def test_span_tree_identical_across_concurrency(self):
        roots = [self.run_traced(c) for c in (1, 8)]
        fingerprints = {root.fingerprint() for root in roots}
        assert len(fingerprints) == 1
        root = roots[0]
        assert root.name == "service"
        names = [c.name for c in root.children]
        # Submission-order grafting: prepares first, then the queries
        # exactly as submitted.
        assert names[:2] == ["prepare:a", "prepare:b"]
        assert len(names) == 2 + 16


class TestCacheTotalsUnderConcurrency:
    def test_single_flight_tallies(self):
        """Identical in-flight queries: 1 miss + N-1 hits at any
        concurrency, and every report carries the same pairs."""
        for concurrency in (1, 8):
            with SpatialQueryService(cluster="WS", seed=SEED) as svc:
                a = svc.prepare(taxi_points(200, seed=11), system="SpatialSpark")
                b = svc.prepare(census_blocks(30, seed=12), system="SpatialSpark")
                queries = [Query("join", a, b)] * 16
                reports = svc.execute(queries, concurrency=concurrency)
                assert svc.counters["service.cache.misses"] == 1
                assert svc.counters["service.cache.hits"] == 15
                assert len({r.pairs for r in reports}) == 1
