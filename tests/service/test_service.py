"""The prepare-once / query-many service lifecycle.

Covers the DatasetHandle registry (content-addressed dedupe), the
prepared join path's equivalence to the one-shot ``spatial_join``, range
queries against brute force, the fingerprinted result cache (hits equal
recomputation and execute nothing), unload semantics, string predicates,
and the ``system_kwargs`` non-mutation fix at the API boundary.
"""

import numpy as np
import pytest

from repro import spatial_join
from repro.core.predicate import (
    INTERSECTS,
    JoinPredicate,
    resolve_predicate,
    within_distance,
)
from repro.data.synthetic import census_blocks, taxi_points
from repro.service import Query, SpatialQueryService

SYSTEMS = ("HadoopGIS", "SpatialHadoop", "SpatialSpark")
SEED = 7


def points(n=300):
    return taxi_points(n, seed=11)


def blocks(n=40):
    return census_blocks(n, seed=12)


@pytest.fixture()
def svc():
    with SpatialQueryService(cluster="WS", seed=SEED) as service:
        yield service


class TestResolvePredicate:
    def test_intersects_string(self):
        assert resolve_predicate("intersects") is INTERSECTS

    def test_within_distance_string(self):
        pred = resolve_predicate("within_distance:500")
        assert pred == within_distance(500.0)

    def test_passthrough(self):
        pred = within_distance(1.5)
        assert resolve_predicate(pred) is pred

    @pytest.mark.parametrize(
        "bad",
        ["touches", "within_distance", "within_distance:abc", "intersects:1"],
    )
    def test_bad_strings(self, bad):
        with pytest.raises(ValueError):
            resolve_predicate(bad)

    def test_bad_type(self):
        with pytest.raises(TypeError):
            resolve_predicate(123)


class TestPreparedJoinEquivalence:
    @pytest.mark.parametrize("system", SYSTEMS)
    def test_pairs_match_one_shot(self, svc, system):
        ref = spatial_join(
            points(), blocks(), system=system, cluster="WS", seed=SEED
        )
        a = svc.prepare(points(), system=system)
        b = svc.prepare(blocks(), system=system)
        report = a.join(b)
        assert report.status == "ok"
        assert report.pairs == ref.pairs
        assert not report.cache_hit

    def test_distance_join_string_predicate(self, svc):
        ref = spatial_join(
            points(), blocks(), system="SpatialHadoop", cluster="WS",
            seed=SEED, predicate=within_distance(0.01),
        )
        a = svc.prepare(points(), system="SpatialHadoop")
        b = svc.prepare(blocks(), system="SpatialHadoop")
        assert a.join(b, "within_distance:0.01").pairs == ref.pairs

    def test_cross_system_join_rejected(self, svc):
        a = svc.prepare(points(), system="SpatialSpark")
        b = svc.prepare(blocks(), system="SpatialHadoop")
        with pytest.raises(ValueError, match="different systems"):
            a.join(b)


class TestHandleRegistry:
    def test_prepare_is_content_addressed(self, svc):
        h1 = svc.prepare(points(), system="SpatialSpark")
        prepares = svc.counters["service.prepares"]
        h2 = svc.prepare(points(), system="SpatialSpark")
        assert h2 is h1
        assert svc.counters["service.prepares"] == prepares

    def test_different_system_different_handle(self, svc):
        h1 = svc.prepare(points(), system="SpatialSpark")
        h2 = svc.prepare(points(), system="SpatialHadoop")
        assert h2 is not h1

    def test_role_filled_in_incrementally(self, svc):
        h = svc.prepare(points(), system="SpatialSpark", roles=("a",))
        assert h.roles == ("a",)
        h2 = svc.prepare(points(), system="SpatialSpark", roles=("b",))
        assert h2 is h
        assert h.roles == ("a", "b")

    def test_unload(self, svc):
        h = svc.prepare(points(), system="SpatialSpark")
        other = svc.prepare(blocks(), system="SpatialSpark")
        h.unload()
        assert not h.alive
        assert svc.counters["service.unloads"] == 1
        with pytest.raises(RuntimeError, match="unloaded"):
            h.join(other)
        # Re-preparing after unload builds a fresh handle.
        h2 = svc.prepare(points(), system="SpatialSpark")
        assert h2 is not h
        assert h2.alive


class TestRangeQueries:
    BOX = (-73.99, 40.70, -73.93, 40.78)

    def test_points_match_brute_force(self, svc):
        h = svc.prepare(points(), system="SpatialSpark")
        result = h.range(self.BOX)
        batch = h.preps["a"].batch
        m = batch.mbrs.data
        xmin, ymin, xmax, ymax = self.BOX
        inside = np.nonzero(
            (m[:, 0] >= xmin) & (m[:, 2] <= xmax)
            & (m[:, 1] >= ymin) & (m[:, 3] <= ymax)
        )[0]
        # Points: MBR containment == exact containment.
        assert set(result.ids) == {int(batch.ids[i]) for i in inside}
        # One vectorized test per record, plus the engine's per-candidate
        # recheck during refinement.
        assert result.counters["geom.mbr_tests"] >= len(batch)

    def test_polygons_refined(self, svc):
        h = svc.prepare(blocks(), system="SpatialHadoop", roles=("a",))
        result = h.range(self.BOX)
        # Refinement can only shrink the MBR-filter candidate set.
        batch = h.preps["a"].batch
        m = batch.mbrs.data
        xmin, ymin, xmax, ymax = self.BOX
        cand = np.nonzero(
            (m[:, 0] <= xmax) & (m[:, 2] >= xmin)
            & (m[:, 1] <= ymax) & (m[:, 3] >= ymin)
        )[0]
        assert set(result.ids) <= {int(batch.ids[i]) for i in cand}

    def test_disjoint_box_is_empty(self, svc):
        h = svc.prepare(points(), system="SpatialSpark")
        assert h.range((0.0, 0.0, 1.0, 1.0)).ids == ()


class TestResultCache:
    def test_join_hit_equals_recomputation(self, svc):
        a = svc.prepare(points(), system="SpatialHadoop")
        b = svc.prepare(blocks(), system="SpatialHadoop")
        first = a.join(b)
        ledger_after_miss = svc.counters.snapshot()
        second = a.join(b)
        assert second.cache_hit and not first.cache_hit
        assert second.pairs == first.pairs
        assert second.breakdown_seconds() == first.breakdown_seconds()
        assert dict(second.counters) == dict(first.counters)
        # The hit executed nothing: the only ledger movement is the
        # service's own bookkeeping — every stage counter stays put.
        delta = svc.counters.diff(ledger_after_miss)
        assert {k for k, v in delta.items() if v} == {
            "service.queries", "service.cache.hits",
        }

    def test_range_hit(self, svc):
        h = svc.prepare(points(), system="SpatialSpark")
        box = (-73.99, 40.70, -73.93, 40.78)
        first = h.range(box)
        second = h.range(box)
        assert second.cache_hit and second.ids == first.ids

    def test_distinct_predicates_do_not_collide(self, svc):
        a = svc.prepare(points(), system="SpatialSpark")
        b = svc.prepare(blocks(), system="SpatialSpark")
        r1 = a.join(b)
        r2 = a.join(b, "within_distance:0.01")
        assert not r2.cache_hit
        assert r2.pairs != r1.pairs

    def test_distinct_plans_do_not_collide(self, svc):
        """Regression: the plan fingerprint is part of the result-cache
        key, so a result computed under one plan is never served for a
        query pinned to a different plan (same pair, same predicate)."""
        from repro.plan import Plan

        a = svc.prepare(points(), system="SpatialSpark")
        b = svc.prepare(blocks(), system="SpatialSpark")
        shuffle = Plan(system="SpatialSpark", strategy="partitioned",
                       local_algorithm="indexed_nested_loop")
        sweep = Plan(system="SpatialSpark", strategy="partitioned",
                     local_algorithm="plane_sweep")
        first = a.join(b, plan=shuffle)
        second = a.join(b, plan=sweep)
        assert not second.cache_hit  # different plan -> different key
        assert second.pairs == first.pairs  # plans never change results
        assert a.join(b, plan=shuffle).cache_hit  # same plan still hits

    def test_auto_plan_hits_across_queries(self, svc):
        # plan="auto" resolves through the per-pair plan cache, so two
        # auto queries over one pair share a fingerprint and the second
        # is a cache hit that charges no extra plan.* counters.
        a = svc.prepare(points(), system="SpatialSpark")
        b = svc.prepare(blocks(), system="SpatialSpark")
        first = a.join(b)
        planned = svc.counters["plan.candidates"]
        assert planned > 0 and svc.counters["plan.cached"] == 1
        second = a.join(b)
        assert second.cache_hit and second.pairs == first.pairs
        assert svc.counters["plan.candidates"] == planned
        assert svc.counters["plan.cached"] == 1

    def test_lru_eviction(self):
        with SpatialQueryService(cluster="WS", seed=SEED, cache_entries=1) as s:
            a = s.prepare(points(), system="SpatialSpark")
            b = s.prepare(blocks(), system="SpatialSpark")
            a.join(b)
            a.join(b, "within_distance:0.01")  # evicts the first entry
            assert s.counters["service.cache.evictions"] == 1
            assert not a.join(b).cache_hit  # re-miss after eviction

    def test_cache_disabled(self):
        with SpatialQueryService(cluster="WS", seed=SEED, cache_entries=0) as s:
            a = s.prepare(points(), system="SpatialSpark")
            b = s.prepare(blocks(), system="SpatialSpark")
            assert not a.join(b).cache_hit
            assert not a.join(b).cache_hit
            assert s.counters["service.cache.hits"] == 0
            assert s.counters["service.cache.misses"] == 0


class TestApiBoundary:
    def test_system_kwargs_not_mutated(self):
        """Regression: spatial_join must never mutate the caller's dict."""
        kwargs = {"sample_fraction": 0.1}
        before = dict(kwargs)
        spatial_join(
            points(100), blocks(20), system="HadoopGIS", cluster="WS",
            seed=SEED, system_kwargs=kwargs,
        )
        assert kwargs == before

    def test_service_copies_system_kwargs(self, svc):
        kwargs = {"sample_fraction": 0.1}
        before = dict(kwargs)
        svc.prepare(points(100), system="HadoopGIS", system_kwargs=kwargs)
        assert kwargs == before

    def test_string_predicate_in_spatial_join(self):
        by_obj = spatial_join(
            points(100), blocks(20), system="SpatialSpark", cluster="WS",
            seed=SEED, predicate=within_distance(0.01),
        )
        by_str = spatial_join(
            points(100), blocks(20), system="SpatialSpark", cluster="WS",
            seed=SEED, predicate="within_distance:0.01",
        )
        assert by_str.pairs == by_obj.pairs

    def test_legacy_kwargs_still_accepted(self):
        """Every historical spatial_join kwarg keeps working."""
        report = spatial_join(
            points(100), blocks(20),
            system="SpatialHadoop",
            predicate=JoinPredicate("intersects"),
            cluster="WS",
            workers=1,
            backend="serial",
            block_size=1 << 12,
            seed=SEED,
            cost_params=None,
            system_kwargs=None,
            trace=True,
        )
        assert report.ok
        assert report.trace is not None
        assert report.trace.name == "spatial_join"

    def test_query_validation(self, svc):
        a = svc.prepare(points(100), system="SpatialSpark")
        with pytest.raises(ValueError, match="right-side handle"):
            Query("join", a)
        with pytest.raises(ValueError, match="box"):
            Query("range", a)
        with pytest.raises(ValueError, match="kind"):
            Query("nearest", a)
        with SpatialQueryService(cluster="WS", seed=SEED) as other:
            foreign = other.prepare(blocks(20), system="SpatialSpark")
            with pytest.raises(ValueError, match="different service"):
                svc.execute([Query("join", a, foreign)])

    def test_closed_service_rejects_work(self):
        s = SpatialQueryService(cluster="WS", seed=SEED)
        s.close()
        with pytest.raises(RuntimeError, match="closed"):
            s.prepare(points(100), system="SpatialSpark")
