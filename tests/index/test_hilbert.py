"""Hilbert curve tests: bijectivity, locality, sorting."""

import numpy as np
import pytest

from repro.geometry import MBR
from repro.index import hilbert_distance, hilbert_sort_order


class TestHilbertDistance:
    def test_order_1_square(self):
        # The four cells of the order-1 curve in canonical order.
        xs = np.array([0, 0, 1, 1])
        ys = np.array([0, 1, 1, 0])
        np.testing.assert_array_equal(hilbert_distance(xs, ys, order=1), [0, 1, 2, 3])

    def test_bijective_small_order(self):
        order = 4
        side = 1 << order
        gx, gy = np.meshgrid(np.arange(side), np.arange(side))
        d = hilbert_distance(gx.ravel(), gy.ravel(), order=order)
        assert sorted(d.tolist()) == list(range(side * side))

    def test_adjacent_cells_along_curve(self):
        # Consecutive curve positions must be grid neighbours (locality).
        order = 5
        side = 1 << order
        gx, gy = np.meshgrid(np.arange(side), np.arange(side))
        xs, ys = gx.ravel(), gy.ravel()
        d = hilbert_distance(xs, ys, order=order)
        by_d = np.argsort(d)
        dx = np.abs(np.diff(xs[by_d]))
        dy = np.abs(np.diff(ys[by_d]))
        assert np.all(dx + dy == 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            hilbert_distance(np.array([2]), np.array([0]), order=1)
        with pytest.raises(ValueError):
            hilbert_distance(np.array([-1]), np.array([0]), order=4)

    def test_does_not_mutate_input(self):
        xs = np.array([1, 2, 3], dtype=np.int64)
        ys = np.array([3, 2, 1], dtype=np.int64)
        xs0, ys0 = xs.copy(), ys.copy()
        hilbert_distance(xs, ys, order=4)
        np.testing.assert_array_equal(xs, xs0)
        np.testing.assert_array_equal(ys, ys0)


class TestHilbertSort:
    def test_is_permutation(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 50, size=(200, 2))
        order = hilbert_sort_order(pts, MBR(0, 0, 50, 50))
        assert sorted(order.tolist()) == list(range(200))

    def test_improves_locality_over_random(self):
        # Total tour length through Hilbert-sorted points should be far
        # shorter than through randomly-ordered points.
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 100, size=(500, 2))
        order = hilbert_sort_order(pts, MBR(0, 0, 100, 100))

        def tour(perm):
            p = pts[perm]
            return np.sqrt(((np.diff(p, axis=0)) ** 2).sum(axis=1)).sum()

        assert tour(order) < 0.3 * tour(np.arange(500))

    def test_degenerate_extent(self):
        pts = np.array([[5.0, 0.0], [1.0, 0.0], [3.0, 0.0]])
        order = hilbert_sort_order(pts, MBR(0, 0, 10, 0))
        assert sorted(order.tolist()) == [0, 1, 2]
