"""STR-tree unit tests: packing, queries, synchronized join."""

import numpy as np
import pytest

from repro.geometry import MBR, MBRArray
from repro.index import STRtree, str_packing_order, sync_tree_join
from repro.metrics import Counters


def random_boxes(n, seed=0, extent=100.0, max_size=5.0):
    rng = np.random.default_rng(seed)
    mins = rng.uniform(0, extent, size=(n, 2))
    sizes = rng.uniform(0, max_size, size=(n, 2))
    return MBRArray(np.hstack([mins, mins + sizes]))


def brute_force(boxes: MBRArray, q: MBR):
    return np.array(
        [i for i in range(len(boxes)) if boxes[i].intersects(q)], dtype=np.int64
    )


class TestPackingOrder:
    def test_permutation(self):
        boxes = random_boxes(100)
        order = str_packing_order(boxes.data, 10)
        assert sorted(order) == list(range(100))

    def test_empty(self):
        assert str_packing_order(np.empty((0, 4)), 8).size == 0

    def test_groups_are_spatially_tight(self):
        # STR leaves should have far smaller total area than random grouping.
        boxes = random_boxes(400, seed=3)
        order = str_packing_order(boxes.data, 16)

        def grouped_area(perm):
            total = 0.0
            for lo in range(0, 400, 16):
                chunk = boxes.data[perm[lo : lo + 16]]
                total += (chunk[:, 2].max() - chunk[:, 0].min()) * (
                    chunk[:, 3].max() - chunk[:, 1].min()
                )
            return total

        assert grouped_area(order) < 0.5 * grouped_area(np.arange(400))


class TestSTRtreeStructure:
    def test_empty_tree(self):
        tree = STRtree(MBRArray.empty())
        assert len(tree) == 0
        assert tree.query(MBR(0, 0, 1, 1)).size == 0

    def test_single_item(self):
        tree = STRtree(MBRArray.from_mbrs([MBR(0, 0, 1, 1)]))
        assert len(tree) == 1
        assert tree.height == 1
        np.testing.assert_array_equal(tree.query(MBR(0.5, 0.5, 2, 2)), [0])

    def test_height_grows_logarithmically(self):
        assert STRtree(random_boxes(10), leaf_capacity=4, fanout=4).height == 2
        assert STRtree(random_boxes(100), leaf_capacity=4, fanout=4).height >= 3

    def test_extent(self):
        boxes = MBRArray.from_mbrs([MBR(0, 0, 1, 1), MBR(5, 5, 9, 7)])
        assert STRtree(boxes).extent == MBR(0, 0, 9, 7)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            STRtree(random_boxes(5), leaf_capacity=1)

    def test_accepts_raw_array(self):
        tree = STRtree(np.array([[0.0, 0.0, 1.0, 1.0]]))
        assert len(tree) == 1


class TestSTRtreeQuery:
    @pytest.mark.parametrize("n", [1, 5, 17, 100, 500])
    def test_matches_brute_force(self, n):
        boxes = random_boxes(n, seed=n)
        tree = STRtree(boxes, leaf_capacity=8, fanout=8)
        rng = np.random.default_rng(n + 1)
        for _ in range(20):
            lo = rng.uniform(0, 90, 2)
            q = MBR(lo[0], lo[1], lo[0] + rng.uniform(0, 30), lo[1] + rng.uniform(0, 30))
            np.testing.assert_array_equal(np.sort(tree.query(q)), brute_force(boxes, q))

    def test_empty_query_box(self):
        tree = STRtree(random_boxes(50))
        from repro.geometry import EMPTY_MBR

        assert tree.query(EMPTY_MBR).size == 0

    def test_miss_region(self):
        tree = STRtree(random_boxes(50))
        assert tree.query(MBR(1000, 1000, 1001, 1001)).size == 0

    def test_query_many(self):
        boxes = random_boxes(60, seed=9)
        tree = STRtree(boxes)
        queries = random_boxes(5, seed=10, max_size=20.0)
        results = tree.query_many(queries)
        assert len(results) == 5
        for i, res in enumerate(results):
            np.testing.assert_array_equal(np.sort(res), brute_force(boxes, queries[i]))

    def test_counters_charged(self):
        counters = Counters()
        tree = STRtree(random_boxes(100), counters=counters)
        assert counters["index.build_ops"] == 100
        assert counters["index.nodes_built"] >= 1
        tree.query(MBR(0, 0, 100, 100))
        assert counters["index.node_visits"] > 0


class TestSyncTreeJoin:
    def test_matches_brute_force(self):
        a = random_boxes(80, seed=1)
        b = random_boxes(90, seed=2)
        ta = STRtree(a, leaf_capacity=8)
        tb = STRtree(b, leaf_capacity=8)
        got = set(map(tuple, sync_tree_join(ta, tb).tolist()))
        want = {
            (i, j)
            for i in range(len(a))
            for j in range(len(b))
            if a[i].intersects(b[j])
        }
        assert got == want

    def test_disjoint_extents_prune(self):
        a = random_boxes(40, seed=3)
        b = MBRArray(random_boxes(40, seed=4).data + 1000.0)
        counters = Counters()
        assert len(sync_tree_join(STRtree(a), STRtree(b), counters)) == 0
        assert counters["index.leaf_pair_tests"] == 0

    def test_empty_side(self):
        a = STRtree(random_boxes(10))
        assert len(sync_tree_join(a, STRtree(MBRArray.empty()))) == 0
        assert len(sync_tree_join(STRtree(MBRArray.empty()), a)) == 0

    def test_asymmetric_sizes(self):
        a = random_boxes(3, seed=5, max_size=50.0)
        b = random_boxes(300, seed=6)
        got = set(map(tuple, sync_tree_join(
            STRtree(a, leaf_capacity=4), STRtree(b, leaf_capacity=4)).tolist()))
        want = {
            (i, j)
            for i in range(len(a))
            for j in range(len(b))
            if a[i].intersects(b[j])
        }
        assert got == want
