"""Grid index and quadtree unit tests."""

import numpy as np
import pytest

from repro.geometry import MBR, MBRArray
from repro.index import GridIndex, QuadTree


def random_boxes(n, seed=0, extent=100.0, max_size=5.0):
    rng = np.random.default_rng(seed)
    mins = rng.uniform(0, extent, size=(n, 2))
    sizes = rng.uniform(0, max_size, size=(n, 2))
    return MBRArray(np.hstack([mins, mins + sizes]))


def brute_force(boxes: MBRArray, q: MBR):
    return {i for i in range(len(boxes)) if boxes[i].intersects(q)}


EXTENT = MBR(0, 0, 105, 105)


class TestGridIndex:
    def test_validation(self):
        from repro.geometry import EMPTY_MBR

        with pytest.raises(ValueError):
            GridIndex(EMPTY_MBR, 4, 4)
        with pytest.raises(ValueError):
            GridIndex(EXTENT, 0, 4)

    def test_cell_geometry(self):
        g = GridIndex(MBR(0, 0, 10, 10), 2, 2)
        assert g.cell_mbr(0) == MBR(0, 0, 5, 5)
        assert g.cell_mbr(3) == MBR(5, 5, 10, 10)
        assert g.cell_id(1, 1) == 3

    def test_candidates_are_superset(self):
        boxes = random_boxes(200, seed=1)
        g = GridIndex(EXTENT, 8, 8)
        g.insert_many(boxes)
        rng = np.random.default_rng(2)
        for _ in range(20):
            lo = rng.uniform(0, 90, 2)
            q = MBR(lo[0], lo[1], lo[0] + 10, lo[1] + 10)
            got = set(g.query(q).tolist())
            assert got >= brute_force(boxes, q)

    def test_spanning_object_in_multiple_cells_deduplicated(self):
        g = GridIndex(MBR(0, 0, 10, 10), 4, 4)
        g.insert(MBR(1, 1, 9, 9), 7)
        assert g.occupied_cells > 1
        np.testing.assert_array_equal(g.query(MBR(0, 0, 10, 10)), [7])

    def test_query_outside_extent(self):
        g = GridIndex(MBR(0, 0, 10, 10), 4, 4)
        g.insert(MBR(1, 1, 2, 2), 0)
        assert g.query(MBR(50, 50, 60, 60)).size == 0

    def test_assign_points_vectorized(self):
        g = GridIndex(MBR(0, 0, 10, 10), 2, 2)
        cells = g.assign_points(np.array([[1, 1], [6, 1], [1, 6], [6, 6], [10, 10]]))
        np.testing.assert_array_equal(cells, [0, 1, 2, 3, 3])

    def test_empty_box_ignored(self):
        from repro.geometry import EMPTY_MBR

        g = GridIndex(EXTENT, 4, 4)
        g.insert(EMPTY_MBR, 1)
        assert len(g) == 0


class TestQuadTree:
    def test_validation(self):
        from repro.geometry import EMPTY_MBR

        with pytest.raises(ValueError):
            QuadTree(EMPTY_MBR)
        with pytest.raises(ValueError):
            QuadTree(EXTENT, node_capacity=0)

    def test_matches_brute_force(self):
        boxes = random_boxes(300, seed=4)
        qt = QuadTree(EXTENT, node_capacity=8)
        qt.insert_many(boxes)
        rng = np.random.default_rng(5)
        for _ in range(20):
            lo = rng.uniform(0, 90, 2)
            q = MBR(lo[0], lo[1], lo[0] + rng.uniform(0, 25), lo[1] + rng.uniform(0, 25))
            assert set(qt.query(q).tolist()) == brute_force(boxes, q)

    def test_splits_on_capacity(self):
        qt = QuadTree(MBR(0, 0, 16, 16), node_capacity=2, max_depth=6)
        pts = [(1, 1), (2, 2), (3, 3), (13, 13), (14, 14)]
        for i, (x, y) in enumerate(pts):
            qt.insert(MBR(x, y, x + 0.1, y + 0.1), i)
        assert qt.depth >= 1
        assert set(qt.query(MBR(0, 0, 4, 4)).tolist()) == {0, 1, 2}

    def test_max_depth_bounds_splitting(self):
        qt = QuadTree(MBR(0, 0, 1, 1), node_capacity=1, max_depth=2)
        for i in range(20):
            qt.insert(MBR(0.1, 0.1, 0.11, 0.11), i)
        assert qt.depth <= 2
        assert qt.query(MBR(0, 0, 0.2, 0.2)).size == 20

    def test_item_outside_extent_still_findable(self):
        qt = QuadTree(MBR(0, 0, 10, 10))
        qt.insert(MBR(100, 100, 101, 101), 42)
        np.testing.assert_array_equal(qt.query(MBR(99, 99, 102, 102)), [42])

    def test_leaf_boxes_tile_extent(self):
        qt = QuadTree(MBR(0, 0, 8, 8), node_capacity=1, max_depth=3)
        rng = np.random.default_rng(6)
        for i, (x, y) in enumerate(rng.uniform(0, 8, size=(30, 2))):
            qt.insert(MBR(x, y, x, y), i)
        total_area = sum(b.area for b in qt.leaf_boxes())
        assert total_area == pytest.approx(64.0)
