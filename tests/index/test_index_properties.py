"""Property-based tests: every index agrees with brute force on any input."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import MBR, MBRArray
from repro.index import GridIndex, QuadTree, RTree, STRtree, sync_tree_join

coord = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)


@st.composite
def mbr_lists(draw, max_size=60):
    n = draw(st.integers(0, max_size))
    boxes = []
    for _ in range(n):
        x1, x2 = sorted((draw(coord), draw(coord)))
        y1, y2 = sorted((draw(coord), draw(coord)))
        boxes.append(MBR(x1, y1, x2, y2))
    return boxes


@st.composite
def query_boxes(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return MBR(x1, y1, x2, y2)


def brute(boxes, q):
    return {i for i, b in enumerate(boxes) if b.intersects(q)}


class TestQueryCorrectness:
    @given(mbr_lists(), query_boxes())
    @settings(max_examples=60)
    def test_strtree_exact(self, boxes, q):
        tree = STRtree(MBRArray.from_mbrs(boxes), leaf_capacity=4, fanout=4)
        assert set(tree.query(q).tolist()) == brute(boxes, q)

    @given(mbr_lists(), query_boxes())
    @settings(max_examples=60)
    def test_rtree_exact(self, boxes, q):
        tree = RTree(max_entries=4)
        tree.insert_many(boxes)
        assert set(tree.query(q).tolist()) == brute(boxes, q)

    @given(mbr_lists(max_size=40), query_boxes())
    @settings(max_examples=40)
    def test_quadtree_exact(self, boxes, q):
        qt = QuadTree(MBR(-100, -100, 100, 100), node_capacity=4, max_depth=6)
        qt.insert_many(boxes)
        assert set(qt.query(q).tolist()) == brute(boxes, q)

    @given(mbr_lists(max_size=40), query_boxes())
    @settings(max_examples=40)
    def test_grid_superset(self, boxes, q):
        g = GridIndex(MBR(-100, -100, 100, 100), 6, 6)
        g.insert_many(MBRArray.from_mbrs(boxes) if boxes else MBRArray.empty())
        assert set(g.query(q).tolist()) >= brute(boxes, q)


class TestStructuralInvariants:
    @given(mbr_lists(max_size=80))
    @settings(max_examples=40)
    def test_rtree_invariants_hold(self, boxes):
        tree = RTree(max_entries=4)
        tree.insert_many(boxes)
        tree.check_invariants()

    @given(mbr_lists(max_size=50), mbr_lists(max_size=50))
    @settings(max_examples=30)
    def test_sync_join_matches_nested_loop(self, a, b):
        ta = STRtree(MBRArray.from_mbrs(a), leaf_capacity=4, fanout=4)
        tb = STRtree(MBRArray.from_mbrs(b), leaf_capacity=4, fanout=4)
        got = set(map(tuple, sync_tree_join(ta, tb).tolist()))
        want = {
            (i, j)
            for i in range(len(a))
            for j in range(len(b))
            if a[i].intersects(b[j])
        }
        assert got == want
