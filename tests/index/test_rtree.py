"""Dynamic R-tree unit tests: inserts, splits, invariants, queries."""

import numpy as np
import pytest

from repro.geometry import EMPTY_MBR, MBR, MBRArray
from repro.index import RTree
from repro.metrics import Counters


def random_boxes(n, seed=0, extent=100.0, max_size=5.0):
    rng = np.random.default_rng(seed)
    mins = rng.uniform(0, extent, size=(n, 2))
    sizes = rng.uniform(0, max_size, size=(n, 2))
    return MBRArray(np.hstack([mins, mins + sizes]))


def brute_force(boxes: MBRArray, q: MBR):
    return np.array(
        [i for i in range(len(boxes)) if boxes[i].intersects(q)], dtype=np.int64
    )


class TestConstruction:
    def test_empty(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.extent.is_empty
        assert tree.query(MBR(0, 0, 1, 1)).size == 0

    def test_min_max_entries(self):
        with pytest.raises(ValueError):
            RTree(max_entries=3)
        tree = RTree(max_entries=10)
        assert tree.min_entries == 5

    def test_insert_grows(self):
        tree = RTree(max_entries=4)
        boxes = random_boxes(50, seed=1)
        tree.insert_many(boxes)
        assert len(tree) == 50
        assert tree.height >= 3
        tree.check_invariants()

    def test_insert_many_with_custom_ids(self):
        tree = RTree()
        tree.insert_many([MBR(0, 0, 1, 1), MBR(2, 2, 3, 3)], ids=[10, 20])
        np.testing.assert_array_equal(tree.query(MBR(0, 0, 5, 5)), [10, 20])

    def test_insert_many_raw_rows(self):
        tree = RTree()
        tree.insert_many(np.array([[0.0, 0.0, 1.0, 1.0], [5.0, 5.0, 6.0, 6.0]]))
        assert len(tree) == 2


class TestInvariants:
    @pytest.mark.parametrize("n", [1, 4, 5, 17, 64, 200])
    @pytest.mark.parametrize("max_entries", [4, 8, 16])
    def test_structure_after_inserts(self, n, max_entries):
        tree = RTree(max_entries=max_entries)
        tree.insert_many(random_boxes(n, seed=n + max_entries))
        tree.check_invariants()

    def test_clustered_inserts(self):
        # Pathological input: many identical boxes force repeated splits.
        tree = RTree(max_entries=4)
        for i in range(40):
            tree.insert(MBR(0, 0, 1, 1), i)
        tree.check_invariants()
        assert tree.query(MBR(0.5, 0.5, 0.6, 0.6)).size == 40

    def test_extent_covers_everything(self):
        boxes = random_boxes(80, seed=2)
        tree = RTree(max_entries=8)
        tree.insert_many(boxes)
        for box in boxes:
            assert tree.extent.contains(box)


class TestQuery:
    @pytest.mark.parametrize("n", [1, 10, 100, 300])
    def test_matches_brute_force(self, n):
        boxes = random_boxes(n, seed=n)
        tree = RTree(max_entries=8)
        tree.insert_many(boxes)
        rng = np.random.default_rng(n)
        for _ in range(15):
            lo = rng.uniform(0, 90, 2)
            q = MBR(lo[0], lo[1], lo[0] + rng.uniform(0, 30), lo[1] + rng.uniform(0, 30))
            np.testing.assert_array_equal(tree.query(q), brute_force(boxes, q))

    def test_empty_query(self):
        tree = RTree()
        tree.insert_many(random_boxes(20))
        assert tree.query(EMPTY_MBR).size == 0

    def test_count_query(self):
        tree = RTree()
        tree.insert_many([MBR(0, 0, 1, 1), MBR(10, 10, 11, 11)])
        assert tree.count_query(MBR(-1, -1, 2, 2)) == 1

    def test_counters(self):
        counters = Counters()
        tree = RTree(max_entries=4, counters=counters)
        tree.insert_many(random_boxes(30))
        assert counters["index.build_ops"] == 30
        assert counters["index.splits"] > 0
        tree.query(MBR(0, 0, 100, 100))
        assert counters["index.node_visits"] > 0
