"""Property-based tests of the sFilter's zero-false-negative guarantee.

The contract the whole prune pipeline rests on: a record the sFilter
prunes (``contains(...) == False``) has an MBR *provably disjoint* from
every MBR of the build side — for arbitrary generated batches, margins
and resolutions, including the degenerate shapes (empty side, single
cell, all-hot bitmap).  False positives are allowed (they only forgo
savings); false negatives never are, because a false negative silently
drops a result pair.

The hypothesis suite runs ≥200 generated cases in CI (see
``test_pruned_box_is_disjoint_from_entire_build_side``), and the
backend matrix pins that a full system run with the filter on is
bit-identical across serial / thread / warm-process execution.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import spatial_join
from repro.data.synthetic import census_blocks, hotspot_points
from repro.exec.backend import ProcessBackend
from repro.geometry.mbr import MBRArray
from repro.shuffle import SFilter, ShuffleConfig, resolve_shuffle

coord = st.floats(
    min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
)


@st.composite
def box_rows(draw, min_size=0, max_size=24):
    """(n, 4) float rows of valid (possibly degenerate) MBRs."""
    n = draw(st.integers(min_size, max_size))
    rows = []
    for _ in range(n):
        x1, x2 = sorted((draw(coord), draw(coord)))
        y1, y2 = sorted((draw(coord), draw(coord)))
        rows.append((x1, y1, x2, y2))
    return np.array(rows, dtype=np.float64).reshape(n, 4)


def _disjoint(q, build_rows, margin):
    """True iff the margin-expanded query row touches no build row."""
    qx0, qy0, qx1, qy1 = q[0] - margin, q[1] - margin, q[2] + margin, q[3] + margin
    for bx0, by0, bx1, by1 in build_rows:
        if not (qx1 < bx0 or bx1 < qx0 or qy1 < by0 or by1 < qy0):
            return False
    return True


class TestZeroFalseNegatives:
    @given(
        build=box_rows(min_size=1),
        queries=box_rows(min_size=1),
        margin=st.floats(min_value=0, max_value=5, allow_nan=False),
        resolution=st.sampled_from([1, 2, 7, 64]),
    )
    @settings(max_examples=200, deadline=None)
    def test_pruned_box_is_disjoint_from_entire_build_side(
        self, build, queries, margin, resolution
    ):
        sf = SFilter(MBRArray(build), resolution=resolution)
        keep = sf.contains(MBRArray(queries), margin=margin)
        for q, kept in zip(queries, keep):
            if not kept:
                assert _disjoint(q, build, margin), (
                    f"false negative: pruned {q} intersects the build side"
                )

    @given(build=box_rows(min_size=1), queries=box_rows(min_size=1))
    @settings(max_examples=50, deadline=None)
    def test_deterministic_pure_function(self, build, queries):
        a = SFilter(MBRArray(build)).contains(MBRArray(queries))
        b = SFilter(MBRArray(build)).contains(MBRArray(queries))
        assert np.array_equal(a, b)


class TestEdgeCases:
    def test_empty_build_side_prunes_everything(self):
        sf = SFilter(MBRArray.empty())
        queries = MBRArray(np.array([[0, 0, 1, 1], [5, 5, 6, 6]], dtype=float))
        assert not sf.contains(queries).any()
        assert sf.n_cells == 0

    def test_empty_query_side(self):
        sf = SFilter(MBRArray(np.array([[0, 0, 1, 1]], dtype=float)))
        assert sf.contains(MBRArray.empty()).shape == (0,)

    def test_single_cell_resolution(self):
        sf = SFilter(
            MBRArray(np.array([[0, 0, 1, 1], [3, 3, 4, 4]], dtype=float)),
            resolution=1,
        )
        assert sf.n_cells == 1
        queries = MBRArray(
            np.array([[2, 2, 2.5, 2.5], [9, 9, 10, 10]], dtype=float)
        )
        keep = sf.contains(queries)
        # One cell covers the whole extent: everything inside bounds is a
        # (harmless) false positive, everything outside is still pruned.
        assert keep.tolist() == [True, False]

    def test_degenerate_point_build_side(self):
        # All build boxes share one point: bounds collapse to a 1x1 grid.
        sf = SFilter(MBRArray(np.array([[2, 3, 2, 3]] * 4, dtype=float)))
        assert (sf.nx, sf.ny) == (1, 1)
        queries = MBRArray(
            np.array([[1.5, 2.5, 2.5, 3.5], [4, 4, 5, 5]], dtype=float)
        )
        assert sf.contains(queries).tolist() == [True, False]

    def test_all_hot_bitmap_prunes_only_outside_bounds(self):
        # One giant box sets every cell: pruning degrades gracefully to a
        # pure bounds check, never to a wrong answer.
        sf = SFilter(MBRArray(np.array([[0, 0, 10, 10]], dtype=float)))
        assert sf.cells_set == sf.n_cells
        queries = MBRArray(
            np.array([[4, 4, 5, 5], [11, 11, 12, 12]], dtype=float)
        )
        assert sf.contains(queries).tolist() == [True, False]

    def test_margin_rescues_near_miss(self):
        sf = SFilter(MBRArray(np.array([[0, 0, 1, 1]], dtype=float)))
        near = MBRArray(np.array([[1.5, 0, 2, 1]], dtype=float))
        assert not sf.contains(near, margin=0.0).any()
        assert sf.contains(near, margin=1.0).all()

    def test_resolution_must_be_positive(self):
        with pytest.raises(ValueError, match="resolution"):
            SFilter(MBRArray.empty(), resolution=0)


class TestResolveShuffle:
    def test_none_and_false_mean_off(self):
        assert resolve_shuffle(None) is None
        assert resolve_shuffle(False) is None

    def test_true_means_defaults(self):
        assert resolve_shuffle(True) == ShuffleConfig()

    def test_config_passes_through(self):
        cfg = ShuffleConfig(hot_factor=8.0)
        assert resolve_shuffle(cfg) is cfg

    def test_rejects_other_types(self):
        with pytest.raises(TypeError, match="shuffle="):
            resolve_shuffle("skew")


BACKENDS = ["serial", "thread"] + (
    ["process"] if ProcessBackend.available() else []
)


class TestBackendDeterminism:
    """A run with the filter on is bit-identical across execution backends.

    The prune charges happen inside task bodies, so this pins that they
    flow through the thread-local redirect sinks and merge in task-index
    order like every other counter.
    """

    @pytest.fixture(scope="class")
    def runs(self):
        left = hotspot_points(240, seed=33)
        right = census_blocks(40, seed=34)
        out = {}
        for backend in BACKENDS:
            report = spatial_join(
                left, right, system="SpatialSpark", plan=None,
                workers=1 if backend == "serial" else 4, backend=backend,
                system_kwargs={
                    "partitioner": "grid", "n_partitions": 9, "shuffle": True,
                },
            )
            out[backend] = report
        return out

    def test_pairs_identical_across_backends(self, runs):
        baseline = runs["serial"].pairs
        for backend, report in runs.items():
            assert report.pairs == baseline, backend

    def test_counter_ledgers_identical_across_backends(self, runs):
        baseline = runs["serial"].counters.snapshot()
        assert baseline.get("shuffle.records_pruned", 0) > 0
        for backend, report in runs.items():
            assert report.counters.snapshot() == baseline, backend
