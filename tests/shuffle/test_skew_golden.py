"""Golden skew regression suite.

The dataset is engineered so both halves of the skew story are provable:

* the left side is ``hotspot_points`` — 90% of the points land in a
  3%x3% corner of the NYC domain, so one grid cell is pathologically
  hot and the adaptive repartitioner must split it;
* the right side is ``census_blocks`` confined to the lower-left
  half-domain, so every upper-half point is provably disjoint from the
  build side and the sFilter must prune it.

What "bit-identical" means here (the spec tension, resolved):

* **pairs** are bit-identical with the feature on vs off — pruning and
  splitting may never change the answer;
* **counter ledgers** are bit-identical *within each mode* across the
  object/batch planes (and across backends, pinned in
  ``test_sfilter.py``) — they cannot be identical on-vs-off because
  the whole point is that the data-movement counters drop.

Straggler ratio uses the deterministic counter-based columns of
``skew_report``, never wall-clock durations.  The ratio is
max-over-*mean* of ``join.candidates`` (``max * tasks / total``): the
hottest task bounds parallel completion time, and mean-normalizing is
robust to the split deliberately creating many small tasks (which
deflates the median and would mask the win).
"""

import pytest

from repro import spatial_join
from repro.data.synthetic import (
    DOMAIN_NYC,
    census_blocks,
    census_blocks_batch,
    hotspot_points,
    hotspot_points_batch,
)
from repro.geometry.mbr import MBR
from repro.trace.skew import skew_report

SYSTEMS = ("HadoopGIS", "SpatialHadoop", "SpatialSpark")
PLANES = ("object", "batch")
MODES = ("off", "on")

# The per-system data-movement analogue that must drop when pruning is
# on.  SpatialHadoop performs a map-only join with no shuffle at all,
# so its analogue is records deserialized from HDFS blocks.
VOLUME_KEY = {
    "HadoopGIS": "shuffle.bytes_disk",
    "SpatialSpark": "shuffle.bytes_mem",
    "SpatialHadoop": "deser.records",
}

# Lower-left half of the NYC domain: upper-half points are prunable.
HALF_DOMAIN = MBR(
    DOMAIN_NYC.xmin,
    DOMAIN_NYC.ymin,
    DOMAIN_NYC.xmin + DOMAIN_NYC.width / 2,
    DOMAIN_NYC.ymin + DOMAIN_NYC.height / 2,
)

_CACHE = {}


def golden_run(system, plane, mode):
    key = (system, plane, mode)
    if key not in _CACHE:
        if plane == "object":
            left = hotspot_points(600, seed=33)
            right = census_blocks(60, seed=34, domain=HALF_DOMAIN)
        else:
            left = hotspot_points_batch(600, seed=33)
            right = census_blocks_batch(60, seed=34, domain=HALF_DOMAIN)
        _CACHE[key] = spatial_join(
            left,
            right,
            system=system,
            plan=None,
            trace=True,
            system_kwargs={
                "partitioner": "grid",
                "n_partitions": 9,
                "shuffle": mode == "on",
            },
        )
    return _CACHE[key]


def join_straggler(trace):
    """Deterministic straggler ratio: worst join.candidates imbalance.

    max-over-mean (``max * tasks / total``) per phase, maximized over
    the phases that charge ``join.candidates``.
    """
    rows = skew_report(trace, counter_keys=["join.candidates"])
    ratios = [
        stats["max"] * row.tasks / stats["total"]
        for row in rows
        for stats in [row.counter_stats.get("join.candidates")]
        if stats is not None and stats["total"]
    ]
    assert ratios, "no phase carried join.candidates"
    return max(ratios)


@pytest.mark.parametrize("plane", PLANES)
@pytest.mark.parametrize("system", SYSTEMS)
class TestAnswerUnchanged:
    def test_pairs_bit_identical_on_vs_off(self, system, plane):
        off = golden_run(system, plane, "off")
        on = golden_run(system, plane, "on")
        assert on.pairs == off.pairs
        assert len(on.pairs) > 0


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("system", SYSTEMS)
class TestPlaneDeterminism:
    def test_ledger_identical_across_planes(self, system, mode):
        obj = golden_run(system, "object", mode).counters.snapshot()
        bat = golden_run(system, "batch", mode).counters.snapshot()
        assert obj == bat

    def test_pairs_identical_across_planes(self, system, mode):
        obj = golden_run(system, "object", mode)
        bat = golden_run(system, "batch", mode)
        assert obj.pairs == bat.pairs


@pytest.mark.parametrize("system", SYSTEMS)
class TestSkewMitigation:
    def test_straggler_ratio_strictly_drops(self, system):
        off = join_straggler(golden_run(system, "object", "off").trace)
        on = join_straggler(golden_run(system, "object", "on").trace)
        assert on < off, f"straggler ratio did not drop: off={off} on={on}"

    def test_hot_cell_was_split(self, system):
        counters = golden_run(system, "object", "on").counters.snapshot()
        assert counters.get("skew.cells_split", 0) > 0
        assert counters.get("skew.cells_added", 0) > 0

    def test_records_pruned_positive(self, system):
        counters = golden_run(system, "object", "on").counters.snapshot()
        assert counters.get("shuffle.records_pruned", 0) > 0
        assert counters.get("shuffle.bytes_pruned", 0) > 0
        assert counters.get("shuffle.sfilter_builds", 0) > 0

    def test_data_movement_strictly_drops(self, system):
        key = VOLUME_KEY[system]
        off = golden_run(system, "object", "off").counters.snapshot()
        on = golden_run(system, "object", "on").counters.snapshot()
        assert key in off and key in on
        assert on[key] < off[key], f"{key} did not drop: off={off[key]} on={on[key]}"

    def test_off_ledger_carries_no_shuffle_keys(self, system):
        counters = golden_run(system, "object", "off").counters.snapshot()
        assert counters.get("shuffle.records_pruned", 0) == 0
        assert counters.get("skew.cells_split", 0) == 0
