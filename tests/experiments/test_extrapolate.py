"""Extrapolation tests: counter classes, pair factor, two-scale validity."""

import numpy as np
import pytest

from repro.cluster import PhaseRecord, SimClock
from repro.experiments import ScaleInfo, classify_counter, extrapolate_clock, pair_factor
from repro.metrics import Counters


class TestClassification:
    @pytest.mark.parametrize(
        "key,cls",
        [
            ("parse.records", "records"),
            ("parse.bytes", "bytes"),
            ("hdfs.bytes_read", "bytes"),
            ("hdfs.records_read", "records"),
            ("shuffle.bytes_mem", "bytes"),
            ("pipe.bytes", "bytes"),
            ("pipe.records", "records"),
            ("sort.ops", "nlogn"),
            ("index.node_visits", "nlogn"),
            ("index.build_ops", "records"),
            ("geom.pip_tests", "pairs"),
            ("geom.seg_pair_tests", "pairs"),
            ("join.candidates", "pairs"),
            ("streaming.refine_calls", "pairs"),
            ("spark.shuffle_records", "records"),
            ("deser.records", "records"),
            ("mr.jobs", "fixed"),
            ("spark.stages", "fixed"),
            ("mr.tasks", "tasks"),
            ("unknown.counter", "records"),
        ],
    )
    def test_classes(self, key, cls):
        assert classify_counter(key) == cls


class TestPairFactor:
    def test_fixed_size_objects_scale_quadratically(self):
        # Polyline-vs-polyline: object dims identical at both scales.
        dims = (0.01, 0.01)
        assert pair_factor(100, 50, dims, dims, dims, dims) == pytest.approx(5000)

    def test_tessellation_collapses_to_linear(self):
        # Points (zero dims) against polygons that shrink 1/sqrt(R_b):
        # factor must collapse to R_a.
        ra, rb = 1000.0, 100.0
        poly_exec = (0.1, 0.1)
        poly_full = (0.1 / np.sqrt(rb), 0.1 / np.sqrt(rb))
        factor = pair_factor(ra, rb, (0, 0), poly_exec, (0, 0), poly_full)
        assert factor == pytest.approx(ra)

    def test_degenerate_points_only(self):
        assert pair_factor(100, 10, (0, 0), (0, 0), (0, 0), (0, 0)) == 10


class TestScaleInfo:
    def make(self):
        return ScaleInfo(
            record_ratio_a=1000.0,
            record_ratio_b=10.0,
            byte_ratio_a=500.0,
            byte_ratio_b=20.0,
            pairs=4000.0,
            exec_records=2000,
            exec_records_a=1000,
            exec_records_b=1000,
            staged_bytes_a=40_000,
            staged_bytes_b=400_000,
        )

    def test_group_ratios(self):
        info = self.make()
        assert info.ratios_for_group("index_a") == (1000.0, 500.0)
        assert info.ratios_for_group("index_b") == (10.0, 20.0)

    def test_join_record_ratio_is_count_weighted(self):
        info = self.make()
        # (1000*1000 + 10*1000) / 2000 = 505
        assert info.record_ratio_join == pytest.approx(505.0)

    def test_join_byte_ratio_is_volume_weighted(self):
        info = self.make()
        # (500*40k + 20*400k) / 440k ≈ 63.6
        assert info.byte_ratio_join == pytest.approx((500 * 40e3 + 20 * 400e3) / 440e3)

    def test_log_correction_above_one(self):
        info = self.make()
        assert info.log_correction(1000.0) > 1.0
        assert info.log_correction(1.0) == pytest.approx(1.0)


class TestClockExtrapolation:
    def test_classes_applied(self):
        info = TestScaleInfo().make()
        clock = SimClock()
        clock.record(
            PhaseRecord(
                name="p",
                counters=Counters(
                    {
                        "parse.records": 10.0,
                        "hdfs.bytes_read": 100.0,
                        "geom.pip_tests": 3.0,
                        "mr.jobs": 2.0,
                        "sort.ops": 7.0,
                    }
                ),
                tasks=4,
                group="index_a",
            )
        )
        out = extrapolate_clock(clock, info)
        c = out.phases[0].counters
        assert c["parse.records"] == pytest.approx(10 * 1000)
        assert c["hdfs.bytes_read"] == pytest.approx(100 * 500)
        assert c["geom.pip_tests"] == pytest.approx(3 * 4000)
        assert c["mr.jobs"] == 2.0  # fixed
        assert c["sort.ops"] == pytest.approx(7 * 1000 * info.log_correction(1000))
        assert out.phases[0].tasks == 4  # structure preserved

    def test_groups_use_their_own_ratios(self):
        info = TestScaleInfo().make()
        clock = SimClock()
        for group in ("index_a", "index_b", "join"):
            clock.record(
                PhaseRecord(
                    name=group, counters=Counters({"parse.records": 1.0}), group=group
                )
            )
        out = extrapolate_clock(clock, info)
        values = [p.counters["parse.records"] for p in out.phases]
        assert values == [1000.0, 10.0, pytest.approx(505.0)]
