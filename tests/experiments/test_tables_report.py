"""Table regeneration and report generator tests.

Uses a reduced execution scale to keep runtime reasonable; the shape
assertions here are the coarse ones that hold at any scale (fine-grained
shape checks live in the benchmarks, which run at the calibrated scale).
"""

import pytest

from repro.experiments import (
    fig1,
    generate_report,
    headline_comparisons,
    table1,
    table2,
    table3,
)

SMALL = {
    "taxi-nycb": 900,
    "edges-linearwater": 2500,
    "taxi1m-nycb": 900,
    "edges0.1-linearwater0.1": 2500,
}


@pytest.fixture(scope="module")
def t2():
    return table2(exec_records=SMALL, seed=2)


@pytest.fixture(scope="module")
def t3():
    return table3(exec_records=SMALL, seed=2)


class TestTable1:
    def test_text(self):
        text = table1()
        assert "169,720,892" in text
        assert "23.8 GB" in text


class TestFig1:
    def test_render(self):
        text = fig1()
        for fragment in ("HadoopGIS", "SpatialHadoop", "SpatialSpark",
                         "streaming", "random", "functional",
                         "HDFS touch points"):
            assert fragment in text


class TestTable2:
    def test_all_cells_present(self, t2):
        assert len(t2.cells) == 2 * 3 * 4

    def test_failure_matrix(self, t2):
        matrix = t2.failure_matrix()
        for exp in ("taxi-nycb", "edges-linearwater"):
            for config in ("WS", "EC2-10", "EC2-8", "EC2-6"):
                assert matrix[(exp, "HadoopGIS", config)] == "broken_pipe"
                assert matrix[(exp, "SpatialHadoop", config)] is None
            assert matrix[(exp, "SpatialSpark", "WS")] is None
            assert matrix[(exp, "SpatialSpark", "EC2-8")] == "oom"

    def test_render_contains_dashes_and_numbers(self, t2):
        text = t2.render()
        assert "-" in text
        assert "SpatialHadoop" in text

    def test_spatialspark_wins_on_ec2(self, t2):
        for exp in ("taxi-nycb", "edges-linearwater"):
            assert t2.seconds(exp, "SpatialSpark", "EC2-10") < t2.seconds(
                exp, "SpatialHadoop", "EC2-10"
            )


class TestTable3:
    def test_all_cells_present(self, t3):
        assert len(t3.cells) == 2 * 3 * 2

    def test_hadoopgis_pattern(self, t3):
        for exp in ("taxi1m-nycb", "edges0.1-linearwater0.1"):
            assert t3.cells[(exp, "HadoopGIS", "WS")] is not None
            assert t3.cells[(exp, "HadoopGIS", "EC2-10")] is None

    def test_render_spatialspark_tot_only(self, t3):
        text = t3.render()
        assert "TOT" in text and "SpatialSpark" in text


class TestHeadlines:
    def test_rows_computed(self, t2, t3):
        rows = headline_comparisons(t2, t3)
        assert len(rows) == 10
        for label, paper, ours in rows:
            assert paper > 0
            assert ours is None or ours > 0

    def test_ec2_speedup_direction(self, t2, t3):
        rows = dict(
            (label, ours) for label, _p, ours in headline_comparisons(t2, t3)
        )
        key = "SpatialSpark over SpatialHadoop, taxi-nycb, EC2-10 (full)"
        assert rows[key] > 1.0  # SpatialSpark wins on EC2-10


class TestReport:
    def test_markdown_structure(self):
        text = generate_report(exec_records=SMALL, seed=2)
        assert text.startswith("# Reproduction report")
        for section in ("## Table 1", "## Table 2", "## Table 3",
                        "## Headline claims", "## Failure matrix"):
            assert section in text
        assert "broken_pipe" in text and "oom" in text
        assert "| taxi-nycb | SpatialHadoop | WS | 3,327 |" in text
