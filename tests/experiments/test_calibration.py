"""Calibration machinery tests (pure parts — no full experiment runs)."""

import numpy as np
import pytest

from repro.cluster import PhaseRecord, SimClock, ec2_config, ws_config
from repro.experiments.calibration import (
    CPU_FIT_KEYS,
    FIT_OUTLIERS,
    FIT_UPPER_BOUNDS,
    GEOS_FACTOR,
    OVERHEAD_FIT_KEYS,
    PAPER_TIMINGS,
    Observation,
    constants_to_params,
    fit_cost_constants,
    observation_features,
)
from repro.metrics import Counters


def clock_with(counters: dict, tasks=4, group="join"):
    clock = SimClock()
    clock.record(PhaseRecord(name="p", counters=Counters(counters), tasks=tasks,
                             group=group))
    return clock


class TestPaperTimings:
    def test_every_fit_key_is_bounded(self):
        for key in CPU_FIT_KEYS + OVERHEAD_FIT_KEYS:
            assert key in FIT_UPPER_BOUNDS

    def test_timings_match_the_paper(self):
        # Spot-check the transcription against the paper's tables.
        assert PAPER_TIMINGS[("taxi-nycb", "SpatialHadoop", "WS", "TOT")] == 3327
        assert PAPER_TIMINGS[("edges-linearwater", "SpatialSpark", "EC2-10", "TOT")] == 1119
        assert PAPER_TIMINGS[("taxi1m-nycb", "HadoopGIS", "WS", "DJ")] == 3273
        assert PAPER_TIMINGS[("edges0.1-linearwater0.1", "SpatialHadoop", "EC2-10", "IB")] == 596

    def test_only_successful_cells_present(self):
        # No HadoopGIS full-dataset or EC2 cells (they failed in the paper).
        for (exp, system, config, _metric) in PAPER_TIMINGS:
            if system == "HadoopGIS":
                assert config == "WS"
                assert exp in ("taxi1m-nycb", "edges0.1-linearwater0.1")

    def test_outliers_are_paper_cells(self):
        for key in FIT_OUTLIERS:
            assert key in PAPER_TIMINGS


class TestObservationFeatures:
    def test_cpu_feature_scales_with_parallelism(self):
        clock = clock_with({"parse.records": 1e6}, tasks=1)
        _, serial = observation_features(clock, ws_config(), "TOT", geos=False)
        clock = clock_with({"parse.records": 1e6}, tasks=16)
        _, parallel = observation_features(clock, ws_config(), "TOT", geos=False)
        i = CPU_FIT_KEYS.index("parse.records")
        assert serial[i] == pytest.approx(16 * parallel[i])

    def test_geos_flag_multiplies_geometry_features(self):
        clock = clock_with({"geom.pip_tests": 1e6})
        _, jts = observation_features(clock, ws_config(), "TOT", geos=False)
        _, geos = observation_features(clock, ws_config(), "TOT", geos=True)
        i = CPU_FIT_KEYS.index("geom.pip_tests")
        assert geos[i] == pytest.approx(GEOS_FACTOR * jts[i])
        j = CPU_FIT_KEYS.index("parse.records")
        assert geos[j] == jts[j]  # non-geometry features unaffected

    def test_metric_filters_groups(self):
        clock = SimClock()
        clock.record(PhaseRecord("a", Counters({"parse.records": 100.0}), 1, "index_a"))
        clock.record(PhaseRecord("j", Counters({"parse.records": 900.0}), 1, "join"))
        i = CPU_FIT_KEYS.index("parse.records")
        _, ia = observation_features(clock, ws_config(), "IA", geos=False)
        _, dj = observation_features(clock, ws_config(), "DJ", geos=False)
        _, tot = observation_features(clock, ws_config(), "TOT", geos=False)
        assert tot[i] == pytest.approx(ia[i] + dj[i])
        assert dj[i] == pytest.approx(9 * ia[i])

    def test_offset_is_bandwidth_time(self):
        clock = clock_with({"hdfs.bytes_read": 280 * 1024**2})
        offset, _ = observation_features(clock, ws_config(), "TOT", geos=False)
        assert offset == pytest.approx(1.0)

    def test_job_node_feature(self):
        clock = clock_with({"mr.jobs": 2.0})
        _, f10 = observation_features(clock, ec2_config(10), "TOT", geos=False)
        _, f6 = observation_features(clock, ec2_config(6), "TOT", geos=False)
        base = len(CPU_FIT_KEYS)
        assert f10[base + 1] == 20.0  # jobs × nodes
        assert f6[base + 1] == 12.0


class TestFit:
    def make_obs(self, key, target, features):
        vec = np.zeros(len(CPU_FIT_KEYS) + len(OVERHEAD_FIT_KEYS))
        for name, value in features.items():
            names = CPU_FIT_KEYS + OVERHEAD_FIT_KEYS
            vec[names.index(name)] = value
        return Observation(key=key, target=target, offset=0.0, features=vec)

    def test_recovers_exact_solution(self):
        # A synthetic system with a known constant is recovered exactly.
        obs = [
            self.make_obs(("e", "s", "WS", "TOT"), 100.0, {"parse.records": 10.0}),
            self.make_obs(("e", "s", "EC2-10", "TOT"), 50.0, {"parse.records": 5.0}),
        ]
        fit = fit_cost_constants(obs, exclude_outliers=False)
        assert fit["parse.records"] == pytest.approx(10.0)

    def test_bounds_respected(self):
        obs = [
            self.make_obs(("e", "s", "WS", "TOT"), 1e9, {"parse.records": 1.0}),
        ]
        fit = fit_cost_constants(obs, exclude_outliers=False)
        assert fit["parse.records"] <= FIT_UPPER_BOUNDS["parse.records"]

    def test_outlier_exclusion(self):
        outlier_key = next(iter(FIT_OUTLIERS))
        obs = [
            self.make_obs(("e", "s", "WS", "TOT"), 100.0, {"parse.records": 10.0}),
            # A wildly inconsistent outlier cell: excluded by default.
            self.make_obs(outlier_key, 1e6, {"parse.records": 10.0}),
        ]
        fit = fit_cost_constants(obs)
        assert fit["parse.records"] == pytest.approx(10.0)

    def test_constants_to_params(self):
        names = CPU_FIT_KEYS + OVERHEAD_FIT_KEYS
        fit = {n: 1.0 for n in names}
        cpu, params = constants_to_params(fit)
        assert set(cpu) == set(CPU_FIT_KEYS)
        assert params.mr_job_overhead_s == 1.0
        assert params.mr_job_pernode_s == 1.0
