"""Tests for the cost explainer and the self-validation harness."""

import pytest

from repro.experiments import (
    explain_report,
    render_explanation,
    run_experiment,
    run_validation,
    validation_cases,
)


@pytest.fixture(scope="module")
def sh_report():
    return run_experiment("taxi1m-nycb", "SpatialHadoop", "WS",
                          exec_records=800, seed=3)


class TestExplain:
    def test_components_sum_to_clock(self, sh_report):
        costs = explain_report(sh_report)
        assert sum(c.total for c in costs) == pytest.approx(
            sh_report.clock.total_seconds, rel=1e-9
        )

    def test_phase_alignment(self, sh_report):
        costs = explain_report(sh_report)
        assert [c.name for c in costs] == [p.name for p in sh_report.clock.phases]
        assert {c.group for c in costs} == {"index_a", "index_b", "join"}

    def test_top_counters_ordered(self, sh_report):
        for cost in explain_report(sh_report, top=5):
            seconds = [s for _k, s in cost.top_cpu_counters]
            assert seconds == sorted(seconds, reverse=True)

    def test_min_seconds_filter(self, sh_report):
        all_costs = explain_report(sh_report)
        big_costs = explain_report(sh_report, min_seconds=1.0)
        assert len(big_costs) <= len(all_costs)
        assert all(c.total >= 1.0 for c in big_costs)

    def test_render(self, sh_report):
        text = render_explanation(explain_report(sh_report))
        assert "TOTAL" in text
        assert "shadoop.join.map" in text
        assert "cpu" in text.splitlines()[0]

    def test_failed_run_explains_partial_work(self):
        report = run_experiment("taxi-nycb", "HadoopGIS", "WS",
                                exec_records=800, seed=3)
        assert not report.ok
        costs = explain_report(report)
        assert costs  # the preprocessing before the broken pipe is visible
        assert any("hgis" in c.name for c in costs)

    def test_geos_profile_applied(self):
        report = run_experiment("taxi1m-nycb", "HadoopGIS", "WS",
                                exec_records=800, seed=3)
        costs = {c.name: c for c in explain_report(report, top=10)}
        join_reduce = costs.get("hgis.join.reduce")
        assert join_reduce is not None
        keys = [k for k, _s in join_reduce.top_cpu_counters]
        assert "streaming.refine_calls" in keys


class TestValidation:
    def test_case_matrix(self):
        cases = validation_cases(seed=1, size=100)
        names = [c.name for c in cases]
        assert "points-polygons/intersects" in names
        assert "points-edges/within_distance" in names
        assert len(cases) == 5

    def test_all_pass(self):
        results = run_validation(seed=3, size=120)
        assert len(results) == 5 * 3
        assert all(passed for _c, _s, passed in results)

    def test_verbose_print(self, capsys):
        run_validation(seed=4, size=60, verbose_print=print)
        out = capsys.readouterr().out
        assert "pairs" in out and "ok" in out
