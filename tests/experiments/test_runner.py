"""Experiment runner tests: cell outcomes, scale-invariance, shapes.

These are the repository's "does the reproduction hold" tests: the
Table-2 failure matrix, the qualitative performance ordering, and the
two-scale consistency of the extrapolation machinery.
"""

import math

import pytest

from repro.experiments import EXPERIMENTS, run_experiment


class TestRunnerBasics:
    def test_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("osm-osm", "SpatialHadoop")

    def test_unknown_cluster(self):
        with pytest.raises(ValueError, match="unknown cluster"):
            run_experiment("taxi-nycb", "SpatialHadoop", "AzureD4")

    def test_arbitrary_ec2_sizes_accepted(self):
        from repro.experiments import resolve_cluster

        assert resolve_cluster("EC2-14").num_nodes == 14
        assert resolve_cluster("WS").is_single_node
        with pytest.raises(ValueError):
            resolve_cluster("EC2-x")

    def test_experiment_catalog(self):
        assert set(EXPERIMENTS) == {
            "taxi-nycb",
            "edges-linearwater",
            "taxi1m-nycb",
            "edges0.1-linearwater0.1",
        }

    def test_report_is_costed(self):
        report = run_experiment(
            "taxi1m-nycb", "SpatialHadoop", "WS", exec_records=800, seed=2
        )
        assert report.ok
        assert report.clock.total_seconds > 0
        b = report.breakdown_seconds()
        assert b["TOT"] == pytest.approx(b["IA"] + b["IB"] + b["DJ"])

    def test_deterministic_given_seed(self):
        a = run_experiment("taxi1m-nycb", "SpatialSpark", "WS", exec_records=800, seed=5)
        b = run_experiment("taxi1m-nycb", "SpatialSpark", "WS", exec_records=800, seed=5)
        assert a.clock.total_seconds == pytest.approx(b.clock.total_seconds)
        assert a.pairs == b.pairs


class TestTable2FailureMatrix:
    """The '-' cells of Table 2, emergent from the substrates."""

    @pytest.mark.parametrize("exp", ["taxi-nycb", "edges-linearwater"])
    def test_hadoopgis_fails_all_full_runs(self, exp):
        for config in ("WS", "EC2-10"):
            report = run_experiment(exp, "HadoopGIS", config, exec_records=800, seed=2)
            assert not report.ok
            assert report.failure_kind == "broken_pipe"

    @pytest.mark.parametrize(
        "config,ok", [("WS", True), ("EC2-10", True), ("EC2-8", False), ("EC2-6", False)]
    )
    def test_spatialspark_oom_matrix(self, config, ok):
        report = run_experiment(
            "taxi-nycb", "SpatialSpark", config, exec_records=800, seed=2
        )
        assert report.ok == ok
        if not ok:
            assert report.failure_kind == "oom"

    @pytest.mark.parametrize("config", ["WS", "EC2-10", "EC2-8", "EC2-6"])
    def test_spatialhadoop_always_succeeds(self, config):
        report = run_experiment(
            "taxi-nycb", "SpatialHadoop", config, exec_records=800, seed=2
        )
        assert report.ok

    def test_hadoopgis_succeeds_on_ws_samples_only(self):
        ws = run_experiment("taxi1m-nycb", "HadoopGIS", "WS", exec_records=800, seed=2)
        assert ws.ok
        ec2 = run_experiment("taxi1m-nycb", "HadoopGIS", "EC2-10", exec_records=800, seed=2)
        assert not ec2.ok


class TestPerformanceShape:
    """Qualitative orderings the paper reports (robust to calibration)."""

    def test_spatialspark_beats_spatialhadoop_on_ec2(self):
        for exp, exec_records in [("taxi-nycb", 2000), ("edges-linearwater", 5000)]:
            sh = run_experiment(exp, "SpatialHadoop", "EC2-10",
                                exec_records=exec_records, seed=1)
            ss = run_experiment(exp, "SpatialSpark", "EC2-10",
                                exec_records=exec_records, seed=1)
            assert ss.clock.total_seconds < sh.clock.total_seconds

    def test_ec2_10_beats_ec2_6_for_spatialhadoop_full(self):
        t10 = run_experiment("edges-linearwater", "SpatialHadoop", "EC2-10",
                             exec_records=5000, seed=1)
        t6 = run_experiment("edges-linearwater", "SpatialHadoop", "EC2-6",
                            exec_records=5000, seed=1)
        assert t10.clock.total_seconds < t6.clock.total_seconds

    def test_hadoopgis_dj_dominates_its_runtime(self):
        # Table 3: HadoopGIS DJ (3273s) >> its indexing (206+54).
        report = run_experiment("taxi1m-nycb", "HadoopGIS", "WS",
                                exec_records=2000, seed=1)
        b = report.breakdown_seconds()
        assert b["DJ"] > 3 * (b["IA"] + b["IB"])

    def test_spatialhadoop_indexing_major_share_on_samples(self):
        # Table 3 finding: "indexing runtimes are several times larger than
        # the distributed join runtimes for SpatialHadoop".  Our fitted
        # EC2 job overhead runs low (EXPERIMENTS.md gap 1), so assert the
        # weaker comparable-share form, stable across execution scales.
        report = run_experiment("edges0.1-linearwater0.1", "SpatialHadoop", "EC2-10",
                                exec_records=5000, seed=1)
        b = report.breakdown_seconds()
        assert b["IA"] + b["IB"] > 0.5 * b["DJ"]

    def test_results_identical_across_systems(self):
        pairs = set()
        for system in ("SpatialHadoop", "SpatialSpark"):
            report = run_experiment("edges0.1-linearwater0.1", system, "WS",
                                    exec_records=2000, seed=1)
            pairs.add(report.pairs)
        assert len(pairs) == 1


class TestTwoScaleConsistency:
    """Extrapolated paper-scale totals must agree when the same experiment
    executes at two different scales — the validity check of the whole
    count-extrapolation methodology."""

    @pytest.mark.parametrize("system", ["SpatialHadoop", "SpatialSpark"])
    def test_taxi1m_totals_stable(self, system):
        small = run_experiment("taxi1m-nycb", system, "WS", exec_records=1200, seed=4)
        large = run_experiment("taxi1m-nycb", system, "WS", exec_records=3000, seed=4)
        ratio = small.clock.total_seconds / large.clock.total_seconds
        assert 0.6 < ratio < 1.7, (small.clock.total_seconds, large.clock.total_seconds)

    def test_counter_extrapolation_stable(self):
        small = run_experiment("taxi1m-nycb", "SpatialHadoop", "WS",
                               exec_records=1200, seed=4)
        large = run_experiment("taxi1m-nycb", "SpatialHadoop", "WS",
                               exec_records=3000, seed=4)
        for key in ("parse.records", "hdfs.bytes_read", "deser.records"):
            a = small.clock.merged_counters()[key]
            b = large.clock.merged_counters()[key]
            assert a > 0 and b > 0
            assert 0.5 < a / b < 2.0, (key, a, b)
