"""File persistence tests (save_tsv / load_tsv on a real filesystem)."""

import pytest

from repro.data import (
    census_blocks,
    linear_water,
    load_tsv,
    save_tsv,
    taxi_points,
    tiger_edges,
)


class TestTsvFiles:
    @pytest.mark.parametrize(
        "generator,n",
        [(taxi_points, 50), (census_blocks, 20), (tiger_edges, 30), (linear_water, 10)],
    )
    def test_roundtrip_every_kind(self, tmp_path, generator, n):
        geoms = generator(n, seed=3)
        path = tmp_path / "data.tsv"
        nbytes = save_tsv(path, geoms)
        assert path.stat().st_size == nbytes
        back = load_tsv(path)
        assert [r.rid for r in back] == list(range(n))
        assert [r.geometry for r in back] == list(geoms)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "data.tsv"
        save_tsv(path, taxi_points(3, seed=1))
        with open(path, "a") as fh:
            fh.write("\n\n")
        assert len(load_tsv(path)) == 3

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("0\tPOINT (1 2)\nnot-a-record\n")
        with pytest.raises(ValueError):
            load_tsv(path)

    def test_empty_dataset(self, tmp_path):
        path = tmp_path / "empty.tsv"
        assert save_tsv(path, []) == 0
        assert load_tsv(path) == []
