"""Synthetic generator tests: determinism, domains, spatial character."""

import numpy as np
import pytest

from repro.data import (
    DOMAIN_NYC,
    DOMAIN_US,
    census_blocks,
    linear_water,
    taxi_points,
    tiger_edges,
)
from repro.geometry import MBR, point_in_polygon
from repro.hdfs import estimate_size


class TestTaxiPoints:
    def test_count_and_determinism(self):
        a = taxi_points(500, seed=1)
        b = taxi_points(500, seed=1)
        assert len(a) == 500
        assert all(p == q for p, q in zip(a, b))
        c = taxi_points(500, seed=2)
        assert any(p != q for p, q in zip(a, c))

    def test_within_domain(self):
        for p in taxi_points(1000, seed=3):
            assert DOMAIN_NYC.contains_point(p.x, p.y)

    def test_hotspot_clustering(self):
        # The Midtown hotspot must be much denser than the domain average.
        pts = np.array([p.xy for p in taxi_points(5000, seed=4)])
        midtown = MBR(-74.02, 40.73, -73.95, 40.78)
        frac_in = np.mean(
            (pts[:, 0] >= midtown.xmin)
            & (pts[:, 0] <= midtown.xmax)
            & (pts[:, 1] >= midtown.ymin)
            & (pts[:, 1] <= midtown.ymax)
        )
        area_frac = midtown.area / DOMAIN_NYC.area
        assert frac_in > 10 * area_frac

    def test_zero_points(self):
        assert taxi_points(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            taxi_points(-1)

    def test_bytes_per_record_matches_table1(self):
        pts = taxi_points(200, seed=5)
        avg = sum(estimate_size(p) for p in pts) / len(pts)
        assert 30 <= avg <= 55  # paper: 6.9 GB / 169.7M ≈ 41 B


class TestCensusBlocks:
    def test_count(self):
        assert len(census_blocks(100, seed=1)) == 100

    def test_tessellation_covers_points_exactly_once(self):
        blocks = census_blocks(150, seed=2)
        pts = taxi_points(60, seed=3)
        for p in pts:
            hits = sum(point_in_polygon(b, p.x, p.y) for b in blocks)
            assert hits >= 1  # covered
            # Interior points (off shared edges) are covered exactly once.
            assert hits <= 2

    def test_vertex_density_matches_table1(self):
        blocks = census_blocks(100, seed=4)
        avg = sum(estimate_size(b) for b in blocks) / len(blocks)
        assert 350 <= avg <= 650  # paper: 19 MB / 38,839 ≈ 490 B

    def test_blocks_within_domain(self):
        for b in census_blocks(50, seed=5):
            assert DOMAIN_NYC.expanded(0.2).contains(b.mbr)

    def test_validation(self):
        with pytest.raises(ValueError):
            census_blocks(0)


class TestTigerEdges:
    def test_count_and_determinism(self):
        a = tiger_edges(300, seed=1)
        assert len(a) == 300
        b = tiger_edges(300, seed=1)
        assert all(np.array_equal(x.coords, y.coords) for x, y in zip(a, b))

    def test_mostly_short_polylines(self):
        lines = tiger_edges(500, seed=2)
        short = sum(1 for l in lines if l.num_points <= 5)
        assert short > 0.5 * len(lines)

    def test_bytes_per_record_matches_table1(self):
        lines = tiger_edges(1500, seed=3)
        avg = sum(estimate_size(l) for l in lines) / len(lines)
        assert 240 <= avg <= 420  # paper: 23.8 GB / 72.7M ≈ 327 B

    def test_urban_clustering(self):
        # Most edges should concentrate near a few metros: the median
        # nearest-neighbour start distance is far below uniform expectation.
        lines = tiger_edges(800, seed=4)
        starts = np.array([l.coords[0] for l in lines])
        sample = starts[:200]
        d = np.sqrt(((sample[:, None, :] - starts[None, :, :]) ** 2).sum(-1))
        np.fill_diagonal(d[:, :200], np.inf)
        nn = d.min(axis=1)
        assert np.median(nn) < 0.35  # degrees; uniform would be ~0.7


class TestLinearWater:
    def test_long_meandering_lines(self):
        lines = linear_water(100, seed=1)
        avg_pts = np.mean([l.num_points for l in lines])
        assert 50 <= avg_pts <= 90  # ~70 vertices like the paper's 1.4 KB records

    def test_bytes_per_record_matches_table1(self):
        lines = linear_water(300, seed=2)
        avg = sum(estimate_size(l) for l in lines) / len(lines)
        assert 1100 <= avg <= 1800  # paper: 8.4 GB / 5.86M ≈ 1434 B

    def test_rivers_flow_forward(self):
        # Meanders should not be pure Brownian noise: end-to-end distance
        # should be a large fraction of a straight line of the same steps.
        lines = linear_water(50, seed=3)
        for l in lines:
            end_to_end = np.linalg.norm(l.coords[-1] - l.coords[0])
            assert end_to_end > 0.05 * l.length
