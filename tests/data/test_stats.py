"""Dataset-statistics and selectivity-estimator tests."""

import numpy as np
import pytest

from repro.data import census_blocks, taxi_points, tiger_edges
from repro.data.stats import (
    describe,
    density_grid,
    estimate_join_candidates,
    skew_ratio,
)
from repro.geometry import MBR, Point, PolyLine
from repro.index import STRtree
from repro.geometry import MBRArray


class TestDescribe:
    def test_point_dataset(self):
        pts = taxi_points(300, seed=1)
        stats = describe(pts)
        assert stats.count == 300
        assert stats.kinds == (("point", 300),)
        assert stats.mean_points == 1.0
        assert stats.mean_width == 0.0
        assert 30 <= stats.mean_bytes <= 55

    def test_mixed_kinds(self):
        geoms = taxi_points(10, seed=2) + list(tiger_edges(5, seed=3))
        stats = describe(geoms)
        assert dict(stats.kinds) == {"point": 10, "polyline": 5}
        assert stats.kinds[0][0] == "point"  # most common first

    def test_extent_covers_everything(self):
        geoms = census_blocks(40, seed=4)
        stats = describe(geoms)
        for g in geoms:
            assert stats.extent.contains(g.mbr)

    def test_empty(self):
        stats = describe([])
        assert stats.count == 0
        assert stats.extent.is_empty

    def test_render(self):
        text = describe(taxi_points(20, seed=5)).render()
        assert "records: 20" in text
        assert "vertices/record" in text


class TestDensity:
    def test_grid_sums_to_count(self):
        pts = taxi_points(500, seed=6)
        grid = density_grid(pts, 8, 8)
        assert grid.sum() == 500
        assert grid.shape == (8, 8)

    def test_uniform_data_low_skew(self):
        rng = np.random.default_rng(7)
        pts = [Point(x, y) for x, y in rng.uniform(0, 100, size=(4000, 2))]
        assert skew_ratio(pts) < 3.0

    def test_taxi_is_heavily_skewed(self):
        # Manhattan hotspots: far from uniform.
        assert skew_ratio(taxi_points(4000, seed=8)) > 10.0

    def test_empty(self):
        assert skew_ratio([]) == 0.0
        assert density_grid([], 4, 4).sum() == 0


class TestCandidateEstimator:
    def brute_candidates(self, left, right, margin=0.0):
        tree = STRtree(MBRArray.from_geometries(right))
        return sum(
            tree.query(g.mbr.expanded(margin)).size for g in left
        )

    def test_uniform_workload_within_2x(self):
        rng = np.random.default_rng(9)
        left = [
            PolyLine(rng.uniform(0, 100, 2) + rng.uniform(0, 3, size=(3, 2)))
            for _ in range(400)
        ]
        right = [
            PolyLine(rng.uniform(0, 100, 2) + rng.uniform(0, 3, size=(3, 2)))
            for _ in range(400)
        ]
        est = estimate_join_candidates(left, right)
        got = self.brute_candidates(left, right)
        assert got / 2.5 <= est <= got * 2.5

    def test_margin_grows_estimate(self):
        rng = np.random.default_rng(10)
        left = [Point(x, y) for x, y in rng.uniform(0, 50, size=(100, 2))]
        right = [
            PolyLine(rng.uniform(0, 50, 2) + rng.uniform(0, 1, size=(2, 2)))
            for _ in range(100)
        ]
        assert estimate_join_candidates(left, right, margin=2.0) > (
            estimate_join_candidates(left, right, margin=0.0)
        )

    def test_empty_side(self):
        assert estimate_join_candidates([], taxi_points(5, seed=1)) == 0.0

    def test_probability_capped(self):
        # Objects bigger than the universe: p capped at 1 → n*m.
        big = [PolyLine([(0, 0), (100, 100)])] * 5
        assert estimate_join_candidates(big, big) == 25.0
