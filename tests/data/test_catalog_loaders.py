"""Catalog (Table 1) and TSV codec tests."""

import pytest

from repro.data import (
    CATALOG,
    TABLE1_ORDER,
    SpatialRecord,
    dataset,
    decode_lines,
    encode_dataset,
    from_tsv_line,
    table1_rows,
    taxi_points,
    to_tsv_line,
)
from repro.geometry import Point, PolyLine


class TestCatalog:
    def test_table1_record_counts_exact(self):
        # The exact numbers from Table 1.
        assert dataset("taxi").logical_records == 169_720_892
        assert dataset("nycb").logical_records == 38_839
        assert dataset("linearwater").logical_records == 5_857_442
        assert dataset("edges").logical_records == 72_729_686
        assert dataset("linearwater0.1").logical_records == 585_809
        assert dataset("edges0.1").logical_records == 7_271_983

    def test_table1_rows_render(self):
        rows = table1_rows()
        assert [r[0] for r in rows] == TABLE1_ORDER
        lookup = {name: (recs, size) for name, recs, size in rows}
        assert lookup["taxi"] == (169_720_892, "6.9 GB")
        assert lookup["nycb"][1] == "19 MB"
        assert lookup["edges"][1] == "23.8 GB"
        assert lookup["linearwater0.1"][1] == "852 MB"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            dataset("osm")

    def test_generate_scales_records(self):
        ds = dataset("nycb").generate(scale=0.01, seed=1)
        assert ds.actual_records == round(38_839 * 0.01)
        assert ds.record_scale == pytest.approx(100, rel=0.02)

    def test_generate_minimum_floor(self):
        ds = dataset("nycb").generate(scale=1e-6, seed=1)
        assert ds.actual_records >= 8

    def test_generate_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            dataset("taxi").generate(scale=0.0)
        with pytest.raises(ValueError):
            dataset("taxi").generate(scale=1.5)

    def test_byte_scale_consistent(self):
        ds = dataset("taxi").generate(scale=1e-5, seed=2)
        assert ds.byte_scale == pytest.approx(
            ds.spec.logical_bytes / ds.actual_bytes
        )

    def test_joined_datasets_use_different_seeds(self):
        a = dataset("edges").generate(scale=1e-6, seed=7)
        b = dataset("linearwater").generate(scale=1e-6, seed=7)
        assert a.geometries[0].coords.tobytes() != b.geometries[0].coords.tobytes()


class TestTsvCodec:
    def test_roundtrip_point(self):
        rec = SpatialRecord(42, Point(1.5, -2.25))
        assert from_tsv_line(to_tsv_line(rec)) == rec

    def test_roundtrip_dataset(self):
        pts = taxi_points(20, seed=1)
        lines = list(encode_dataset(pts))
        back = list(decode_lines(lines))
        assert [r.rid for r in back] == list(range(20))
        assert all(r.geometry == p for r, p in zip(back, pts))

    def test_malformed_line(self):
        with pytest.raises(ValueError):
            from_tsv_line("no-tab-here")
        with pytest.raises(ValueError):
            from_tsv_line("abc\tPOINT (1 2)")  # non-integer id

    def test_serialized_size_includes_id(self):
        # The id field contributes its actual text width plus the tab.
        rec = SpatialRecord(1, Point(0, 0))
        assert rec.serialized_size() == 2 + rec.geometry.serialized_size()
        wide = SpatialRecord(123456, Point(0, 0))
        assert wide.serialized_size() == 7 + wide.geometry.serialized_size()
