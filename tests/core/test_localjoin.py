"""Local join algorithm tests: all three algorithms agree with brute force."""

import numpy as np
import pytest

from repro.core import (
    LOCAL_JOIN_ALGORITHMS,
    indexed_nested_loop_join,
    local_join,
    plane_sweep_join,
    refine_candidates,
    sync_rtree_join,
)
from repro.geometry import JtsLikeEngine, Point, PolyLine, Polygon, geometries_intersect
from repro.metrics import Counters


def point_cloud(n, seed):
    rng = np.random.default_rng(seed)
    return [Point(x, y) for x, y in rng.uniform(0, 50, size=(n, 2))]


def polygons(n, seed):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        cx, cy = rng.uniform(5, 45, 2)
        r = rng.uniform(1, 5)
        angles = np.sort(rng.uniform(0, 2 * np.pi, rng.integers(3, 8)))
        pts = np.column_stack([cx + r * np.cos(angles), cy + r * np.sin(angles)])
        if len(pts) >= 3:
            out.append(Polygon(pts))
    return out


def polylines(n, seed):
    rng = np.random.default_rng(seed)
    return [
        PolyLine(rng.uniform(0, 50, size=(rng.integers(2, 5), 2))) for _ in range(n)
    ]


def brute_join(left, right):
    return sorted(
        (i, j)
        for i in range(len(left))
        for j in range(len(right))
        if geometries_intersect(left[i], right[j])
    )


ALGOS = sorted(LOCAL_JOIN_ALGORITHMS)


class TestAgreementWithBruteForce:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_points_in_polygons(self, algo):
        left, right = point_cloud(300, 1), polygons(25, 2)
        engine = JtsLikeEngine()
        assert local_join(algo, left, right, engine) == brute_join(left, right)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_polyline_polyline(self, algo):
        left, right = polylines(60, 3), polylines(70, 4)
        engine = JtsLikeEngine()
        assert local_join(algo, left, right, engine) == brute_join(left, right)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_empty_sides(self, algo):
        engine = JtsLikeEngine()
        assert local_join(algo, [], polygons(3, 5), engine) == []
        assert local_join(algo, point_cloud(3, 6), [], engine) == []

    def test_all_algorithms_identical(self):
        left, right = polylines(50, 7), polylines(50, 8)
        engine = JtsLikeEngine()
        results = {
            algo: local_join(algo, left, right, engine) for algo in ALGOS
        }
        assert len({tuple(r) for r in results.values()}) == 1


class TestDispatch:
    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown local join"):
            local_join("bogus", [], [], JtsLikeEngine())


class TestRefinement:
    def test_refine_drops_false_positives(self):
        # Two polylines with intersecting MBRs but disjoint geometry.
        a = PolyLine([(0, 0), (10, 10)])
        b = PolyLine([(8, 0), (10, 1)])
        assert a.mbr.intersects(b.mbr)
        engine = JtsLikeEngine()
        assert refine_candidates([a], [b], [(0, 0)], engine) == []

    def test_refine_batches_points_per_polygon(self):
        poly = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        pts = [Point(5, 5), Point(20, 20), Point(0, 0)]
        engine = JtsLikeEngine()
        got = refine_candidates(pts, [poly], [(0, 0), (1, 0), (2, 0)], engine)
        assert got == [(0, 0), (2, 0)]
        # One batched call: pip_tests == number of probed points.
        assert engine.counters["geom.pip_tests"] == 3

    def test_refine_empty(self):
        assert refine_candidates([], [], [], JtsLikeEngine()) == []

    def test_refine_output_sorted(self):
        left, right = polylines(20, 9), polylines(20, 10)
        cands = [(i, j) for i in range(20) for j in range(20)]
        got = refine_candidates(left, right, cands, JtsLikeEngine())
        assert got == sorted(got)


class TestCounters:
    def test_inl_counts_candidates(self):
        counters = Counters()
        left, right = point_cloud(100, 11), polygons(10, 12)
        indexed_nested_loop_join(left, right, JtsLikeEngine(), counters=counters)
        assert counters["join.candidates"] >= 0
        assert counters["index.build_ops"] == 10  # tree over the right side

    def test_sweep_counts_ops(self):
        counters = Counters()
        left, right = polylines(40, 13), polylines(40, 14)
        plane_sweep_join(left, right, JtsLikeEngine(), counters=counters)
        assert counters["join.sweep_ops"] > 0
        assert counters["sort.ops"] > 0

    def test_sync_counts_node_visits(self):
        counters = Counters()
        left, right = polylines(40, 15), polylines(40, 16)
        sync_rtree_join(left, right, JtsLikeEngine(), counters=counters)
        assert counters["index.node_visits"] > 0
        assert counters["index.build_ops"] == 80  # both trees

    def test_filter_costs_differ_between_algorithms(self):
        # The three algorithms must be distinguishable in the accounting,
        # which is what the ablation bench measures.
        left, right = point_cloud(200, 17), polygons(20, 18)
        keys = set()
        for algo in ALGOS:
            counters = Counters()
            local_join(algo, left, right, JtsLikeEngine(), counters=counters)
            keys.add(frozenset(k for k in counters if not k.startswith("geom")))
        assert len(keys) > 1
