"""Partitioner tests: tiling coverage, assignment correctness, balance."""

import numpy as np
import pytest

from repro.core import (
    BSPPartitioner,
    GridPartitioner,
    HilbertPartitioner,
    QuadTreePartitioner,
    STRPartitioner,
    make_partitioner,
)
from repro.geometry import MBR, MBRArray

UNIVERSE = MBR(0, 0, 100, 100)


def sample_boxes(n=300, seed=0, clustered=False):
    rng = np.random.default_rng(seed)
    if clustered:
        centers = rng.choice([10, 30, 80], size=(n, 2)) + rng.normal(0, 3, size=(n, 2))
        mins = np.clip(centers, 0, 98)
    else:
        mins = rng.uniform(0, 98, size=(n, 2))
    sizes = rng.uniform(0, 2, size=(n, 2))
    return MBRArray(np.hstack([mins, np.minimum(mins + sizes, 100)]))


class TestFactory:
    @pytest.mark.parametrize("name", ["grid", "bsp", "quadtree", "str", "hilbert"])
    def test_make(self, name):
        assert make_partitioner(name).name == name

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_partitioner("kd")


class TestValidation:
    def test_bad_n_partitions(self):
        with pytest.raises(ValueError):
            GridPartitioner().partition(sample_boxes(), 0, UNIVERSE)

    def test_empty_universe(self):
        from repro.geometry import EMPTY_MBR

        with pytest.raises(ValueError):
            BSPPartitioner().partition(sample_boxes(), 4, EMPTY_MBR)


class TestTilingPartitioners:
    @pytest.mark.parametrize("cls", [GridPartitioner, BSPPartitioner, QuadTreePartitioner])
    def test_produces_tiles(self, cls):
        part = cls().partition(sample_boxes(), 16, UNIVERSE)
        assert part.tiles
        assert len(part) >= 16 * 0.5  # about the requested count

    @pytest.mark.parametrize("cls", [GridPartitioner, BSPPartitioner, QuadTreePartitioner])
    def test_tiles_cover_universe_interior(self, cls):
        part = cls().partition(sample_boxes(), 9, UNIVERSE)
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 100, size=(500, 2))
        assigned = part.assign_points(pts)
        assert (assigned >= 0).all()

    @pytest.mark.parametrize("cls", [GridPartitioner, BSPPartitioner, QuadTreePartitioner])
    def test_boundary_stretch_covers_strays(self, cls):
        part = cls().partition(sample_boxes(), 8, UNIVERSE)
        # A geometry far outside the sampled extent must still land somewhere.
        ids = part.assign_multi(MBR(150, 150, 151, 151))
        assert ids.size >= 1

    def test_multi_assignment_spanning_box(self):
        part = GridPartitioner().partition(sample_boxes(), 16, UNIVERSE)
        ids = part.assign_multi(MBR(10, 10, 90, 90))
        assert ids.size > 1
        assert sorted(set(ids.tolist())) == sorted(ids.tolist())  # no duplicates

    def test_adaptive_partitioners_balance_clustered_data(self):
        sample = sample_boxes(600, seed=3, clustered=True)
        centers = sample.centers

        def max_load(part):
            counts = np.bincount(part.assign_points(centers), minlength=len(part))
            return counts.max()

        grid_load = max_load(GridPartitioner().partition(sample, 16, UNIVERSE))
        # Density-adaptive splits must spread a skewed sample better than
        # a uniform grid.
        assert max_load(BSPPartitioner().partition(sample, 16, UNIVERSE)) < grid_load
        assert max_load(QuadTreePartitioner().partition(sample, 16, UNIVERSE)) < grid_load

    def test_grid_dimensions(self):
        part = GridPartitioner().partition(sample_boxes(), 12, UNIVERSE)
        assert len(part) in (12, 16)  # nx*ny rounding


class TestNonTilingPartitioners:
    @pytest.mark.parametrize("cls", [STRPartitioner, HilbertPartitioner])
    def test_not_tiles(self, cls):
        part = cls().partition(sample_boxes(), 10, UNIVERSE)
        assert not part.tiles
        with pytest.raises(ValueError, match="multi-assignment"):
            part.assign_multi(MBR(1, 1, 2, 2))

    @pytest.mark.parametrize("cls", [STRPartitioner, HilbertPartitioner])
    def test_best_assignment_always_resolves(self, cls):
        part = cls().partition(sample_boxes(), 10, UNIVERSE)
        assert 0 <= part.assign_best(MBR(50, 50, 51, 51)) < len(part)
        # Even a far-away box resolves (nearest-center fallback).
        assert 0 <= part.assign_best(MBR(900, 900, 901, 901)) < len(part)

    @pytest.mark.parametrize("cls", [STRPartitioner, HilbertPartitioner])
    def test_boxes_cover_sample(self, cls):
        sample = sample_boxes(200, seed=5)
        part = cls().partition(sample, 8, UNIVERSE)
        tree_extent = part.boxes.extent()
        assert tree_extent.contains(sample.extent())

    @pytest.mark.parametrize("cls", [STRPartitioner, HilbertPartitioner])
    def test_empty_sample_single_partition(self, cls):
        part = cls().partition(MBRArray.empty(), 8, UNIVERSE)
        assert len(part) == 1


class TestExpandedToContents:
    def test_expansion(self):
        part = STRPartitioner().partition(sample_boxes(50), 4, UNIVERSE)
        contents = [MBR(0, 0, 10, 10) for _ in range(len(part))]
        expanded = part.expanded_to_contents(contents)
        assert len(expanded) == len(part)
        assert expanded.boxes[0] == MBR(0, 0, 10, 10)

    def test_length_mismatch(self):
        part = GridPartitioner().partition(sample_boxes(50), 4, UNIVERSE)
        with pytest.raises(ValueError):
            part.expanded_to_contents([MBR(0, 0, 1, 1)])


class TestAssignPointsDeterminism:
    def test_edge_points_assigned_consistently(self):
        part = GridPartitioner().partition(sample_boxes(), 4, UNIVERSE)
        pts = np.array([[50.0, 50.0]] * 3)  # exactly on shared tile corner
        got = part.assign_points(pts)
        assert len(set(got.tolist())) == 1
