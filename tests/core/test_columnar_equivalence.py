"""Golden equivalence: object plane vs columnar plane, bit for bit.

The tentpole invariant of the columnar data plane: every local join
algorithm, under every geometry engine, produces *identical pairs and
identical counters* whether the inputs are geometry-object lists or
:class:`~repro.geometry.batch.GeometryBatch` instances.  Same for the
full systems through :func:`repro.api.spatial_join`, on every execution
backend.
"""

import numpy as np
import pytest

from repro.api import spatial_join
from repro.core.localjoin import LOCAL_JOIN_ALGORITHMS, local_join
from repro.core.predicate import INTERSECTS, within_distance
from repro.data.synthetic import (
    census_blocks,
    census_blocks_batch,
    taxi_points,
    taxi_points_batch,
    tiger_edges,
    tiger_edges_batch,
)
from repro.geometry.batch import GeometryBatch
from repro.geometry.engine import make_engine
from repro.index.strtree import STRtree
from repro.metrics import Counters

WORKLOADS = [
    ("pts_poly", lambda: (taxi_points(600, seed=21), census_blocks(90, seed=22)),
     INTERSECTS),
    ("pts_edges", lambda: (taxi_points(400, seed=23), tiger_edges(80, seed=24)),
     within_distance(0.01)),
]


@pytest.mark.parametrize("algorithm", sorted(LOCAL_JOIN_ALGORITHMS))
@pytest.mark.parametrize("engine_name", ["jts", "geos"])
@pytest.mark.parametrize("workload", WORKLOADS, ids=[w[0] for w in WORKLOADS])
def test_local_join_object_vs_batch(algorithm, engine_name, workload):
    _name, make, predicate = workload
    left, right = make()
    results = {}
    for tag, l_in, r_in in (
        ("object", left, right),
        ("batch", GeometryBatch.from_geometries(left),
         GeometryBatch.from_geometries(right)),
    ):
        counters = Counters()
        engine = make_engine(engine_name, counters)
        pairs = local_join(
            algorithm, l_in, r_in, engine, counters=counters, predicate=predicate
        )
        results[tag] = (pairs, dict(counters))
    obj_pairs, obj_counters = results["object"]
    bat_pairs, bat_counters = results["batch"]
    # The object plane keeps the documented sorted list of tuples; the
    # batch plane is a lexsorted (n, 2) int64 ndarray of the same pairs.
    assert isinstance(obj_pairs, list)
    assert isinstance(bat_pairs, np.ndarray)
    assert bat_pairs.dtype == np.int64 and bat_pairs.ndim == 2
    as_tuples = list(map(tuple, bat_pairs.tolist()))
    assert as_tuples == sorted(as_tuples)  # lexsorted
    assert obj_pairs == as_tuples
    assert obj_counters == bat_counters


def test_query_many_matches_scalar_queries():
    boxes = GeometryBatch.from_geometries(census_blocks(120, seed=30)).mbrs
    probes = GeometryBatch.from_geometries(taxi_points(300, seed=31)).mbrs

    c_many = Counters()
    tree = STRtree(boxes, counters=c_many)
    build_charges = dict(c_many)
    hits_many = tree.query_many(probes)

    c_scalar = Counters()
    tree_scalar = STRtree(boxes, counters=c_scalar)
    hits_scalar = [tree_scalar.query(probes.take([i]).extent())
                   for i in range(len(probes))]

    assert len(hits_many) == len(hits_scalar)
    for a, b in zip(hits_many, hits_scalar):
        assert a.tolist() == b.tolist()
    # Identical traversal accounting, not just identical results.
    assert dict(c_many) == dict(c_scalar)
    assert build_charges  # the tree build itself was counted


@pytest.mark.parametrize("system", ["HadoopGIS", "SpatialHadoop", "SpatialSpark"])
def test_systems_object_vs_batch(system):
    lo, ro = taxi_points(500, seed=25), census_blocks(60, seed=26)
    lb = taxi_points_batch(500, seed=25)
    rb = census_blocks_batch(60, seed=26)
    reports = {}
    for tag, L, R in (("object", lo, ro), ("batch", lb, rb)):
        rep = spatial_join(L, R, system=system, block_size=1 << 12, seed=5)
        reports[tag] = (rep.status, rep.pairs,
                        tuple(sorted(rep.counters.items())))
    assert reports["object"] == reports["batch"]


@pytest.mark.parametrize("backend,workers", [
    ("serial", 1), ("thread", 3), ("process", 3),
])
def test_batch_inputs_deterministic_across_backends(backend, workers):
    lb = taxi_points_batch(500, seed=27)
    rb = tiger_edges_batch(60, seed=28)
    rep = spatial_join(
        lb, rb, system="SpatialHadoop", predicate=within_distance(0.01),
        backend=backend, workers=workers, block_size=1 << 12, seed=5,
    )
    ref = spatial_join(
        lb, rb, system="SpatialHadoop", predicate=within_distance(0.01),
        backend="serial", workers=1, block_size=1 << 12, seed=5,
    )
    assert rep.status == ref.status == "ok"
    assert rep.pairs == ref.pairs
    assert dict(rep.counters) == dict(ref.counters)


def test_distance_pairs_match_bruteforce():
    # End-to-end sanity on the batch plane: the refined pairs are the
    # geometrically correct ones, not merely consistent between planes.
    left = taxi_points(120, seed=29)
    right = census_blocks(25, seed=32)
    lb, rb = (GeometryBatch.from_geometries(left),
              GeometryBatch.from_geometries(right))
    counters = Counters()
    engine = make_engine("jts", counters)
    got = local_join("plane_sweep", lb, rb, engine,
                     counters=counters, predicate=INTERSECTS)
    brute = make_engine("jts", Counters())
    expected = sorted(
        (i, j)
        for i, p in enumerate(left)
        for j, poly in enumerate(right)
        if INTERSECTS.evaluate(brute, p, poly)
    )
    assert list(map(tuple, got.tolist())) == expected


def test_write_batch_file_matches_write_file():
    from repro.data.loaders import SpatialRecord
    from repro.hdfs.filesystem import SimulatedHDFS

    geoms = taxi_points(150, seed=33) + tiger_edges(30, seed=34)
    batch = GeometryBatch.from_geometries(geoms)
    records = [SpatialRecord(i, g) for i, g in enumerate(geoms)]

    h1, h2 = (SimulatedHDFS(block_size=1 << 11, counters=Counters()),
              SimulatedHDFS(block_size=1 << 11, counters=Counters()))
    f_obj = h1.write_file("/d", records)
    f_bat = h2.write_batch_file("/d", batch)

    # Identical block boundaries, byte accounting and counters.
    assert [(len(b), b.nbytes) for b in f_obj.blocks] == \
           [(len(b), b.nbytes) for b in f_bat.blocks]
    assert dict(h1.counters) == dict(h2.counters)

    back = h2.read_batch_file("/d")
    assert back.to_geometries() == geoms
    assert np.array_equal(back.mbrs.data, batch.mbrs.data)
