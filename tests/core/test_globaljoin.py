"""Global-join pairing strategy tests."""

import numpy as np
import pytest

from repro.core import (
    pair_partitions,
    pair_partitions_indexed,
    pair_partitions_nested,
    pair_partitions_sweep,
)
from repro.geometry import MBRArray
from repro.metrics import Counters


def boxes(n, seed, extent=100.0):
    rng = np.random.default_rng(seed)
    mins = rng.uniform(0, extent, size=(n, 2))
    sizes = rng.uniform(1, 10, size=(n, 2))
    return MBRArray(np.hstack([mins, mins + sizes]))


def brute(a, b):
    return sorted(
        (i, j)
        for i in range(len(a))
        for j in range(len(b))
        if a[i].intersects(b[j])
    )


STRATEGIES = ["nested", "sweep", "indexed"]


class TestCorrectness:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("na,nb", [(1, 1), (10, 15), (60, 40)])
    def test_matches_brute_force(self, strategy, na, nb):
        a, b = boxes(na, na), boxes(nb, nb + 100)
        got = pair_partitions(strategy, a, b)
        assert got.dtype == np.int64 and got.ndim == 2
        assert list(map(tuple, got.tolist())) == brute(a, b)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_empty_sides(self, strategy):
        a = boxes(5, 1)
        assert len(pair_partitions(strategy, a, MBRArray.empty())) == 0
        assert len(pair_partitions(strategy, MBRArray.empty(), a)) == 0

    def test_all_strategies_identical(self):
        a, b = boxes(30, 2), boxes(35, 3)
        results = {s: pair_partitions(s, a, b).tobytes() for s in STRATEGIES}
        assert len(set(results.values())) == 1

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            pair_partitions("magic", boxes(2, 4), boxes(2, 5))


class TestAccounting:
    def test_nested_counts_all_pairs(self):
        counters = Counters()
        pair_partitions_nested(boxes(10, 6), boxes(20, 7), counters)
        assert counters["geom.mbr_tests"] == 200

    def test_sweep_cheaper_than_nested_on_sparse_data(self):
        a, b = boxes(100, 8, extent=10_000), boxes(100, 9, extent=10_000)
        nested_c, sweep_c = Counters(), Counters()
        pair_partitions_nested(a, b, nested_c)
        pair_partitions_sweep(a, b, sweep_c)
        assert sweep_c["cpu.ops"] < nested_c["cpu.ops"]

    def test_indexed_builds_trees(self):
        counters = Counters()
        pair_partitions_indexed(boxes(20, 10), boxes(20, 11), counters)
        assert counters["index.build_ops"] == 40
