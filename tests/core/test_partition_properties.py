"""Property-based tests of the partitioning correctness lemma.

The whole partition-based join rests on: *any two geometries whose
(margin-expanded) MBRs intersect must share at least one partition* under
multi-assignment on a tiling partitioning, and their partitions must be
paired under best-assignment with content-expanded MBRs.  Hypothesis
hammers both lemmas.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BSPPartitioner,
    GridPartitioner,
    QuadTreePartitioner,
    STRPartitioner,
    pair_partitions_nested,
)
from repro.geometry import EMPTY_MBR, MBR, MBRArray

coord = st.floats(min_value=0, max_value=100, allow_nan=False, allow_infinity=False)


@st.composite
def boxes(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return MBR(x1, y1, x2, y2)


@st.composite
def box_lists(draw, min_size=1, max_size=12):
    return [draw(boxes()) for _ in range(draw(st.integers(min_size, max_size)))]


UNIVERSE = MBR(0, 0, 100, 100)
TILING = [GridPartitioner, BSPPartitioner, QuadTreePartitioner]


class TestMultiAssignmentLemma:
    @pytest.mark.parametrize("cls", TILING)
    @given(sample=box_lists(), a=boxes(), b=boxes())
    @settings(max_examples=15, deadline=None)
    def test_intersecting_boxes_share_a_partition(self, cls, sample, a, b):
        part = cls().partition(MBRArray.from_mbrs(sample), 4, UNIVERSE)
        if a.intersects(b):
            pa = set(part.assign_multi(a).tolist())
            pb = set(part.assign_multi(b).tolist())
            assert pa & pb, (a, b)

    @pytest.mark.parametrize("cls", TILING)
    @given(sample=box_lists(), a=boxes())
    @settings(max_examples=10, deadline=None)
    def test_every_box_is_assigned(self, cls, sample, a):
        part = cls().partition(MBRArray.from_mbrs(sample), 4, UNIVERSE)
        assert part.assign_multi(a).size >= 1


class TestBestAssignmentLemma:
    @given(items=box_lists(min_size=2, max_size=12))
    @settings(max_examples=20, deadline=None)
    def test_content_expanded_pairing_covers_all_intersections(self, items):
        """SpatialHadoop's scheme: single-assign each item, expand partition
        MBRs to their contents, pair expanded MBRs — every intersecting
        item pair must land in a paired partition pair."""
        part = STRPartitioner().partition(MBRArray.from_mbrs(items), 4, UNIVERSE)
        assignment = [part.assign_best(box) for box in items]
        contents: list[MBR] = [EMPTY_MBR] * len(part)
        for box, pid in zip(items, assignment):
            contents[pid] = contents[pid].union(box)
        expanded = part.expanded_to_contents(contents)
        # Treat the items as two sides of a self-join.
        pairs = set(map(tuple, pair_partitions_nested(
            expanded.boxes, expanded.boxes).tolist()))
        for i, a in enumerate(items):
            for j, b in enumerate(items):
                if a.intersects(b):
                    assert (assignment[i], assignment[j]) in pairs
