"""Join-predicate tests: validation, filter expansion, refinement parity."""

import numpy as np
import pytest

from repro.core import (
    INTERSECTS,
    JoinPredicate,
    LOCAL_JOIN_ALGORITHMS,
    local_join,
    within_distance,
)
from repro.geometry import (
    MBR,
    GeosLikeEngine,
    JtsLikeEngine,
    Point,
    PolyLine,
    geometry_distance,
)


def points(n, seed):
    rng = np.random.default_rng(seed)
    return [Point(x, y) for x, y in rng.uniform(0, 20, size=(n, 2))]


def lines(n, seed):
    rng = np.random.default_rng(seed)
    return [PolyLine(rng.uniform(0, 20, size=(rng.integers(2, 5), 2))) for _ in range(n)]


class TestPredicateType:
    def test_validation(self):
        with pytest.raises(ValueError):
            JoinPredicate("touches")
        with pytest.raises(ValueError):
            JoinPredicate("within_distance", -1.0)
        with pytest.raises(ValueError):
            JoinPredicate("intersects", 2.0)

    def test_filter_margin(self):
        assert INTERSECTS.filter_margin == 0.0
        assert within_distance(2.5).filter_margin == 2.5

    def test_expand(self):
        box = MBR(0, 0, 1, 1)
        assert INTERSECTS.expand(box) == box
        assert within_distance(1.0).expand(box) == MBR(-1, -1, 2, 2)

    def test_evaluate(self):
        engine = JtsLikeEngine()
        a, b = Point(0, 0), Point(0, 3)
        assert not INTERSECTS.evaluate(engine, a, b)
        assert within_distance(3.0).evaluate(engine, a, b)
        assert not within_distance(2.9).evaluate(engine, a, b)


class TestDistanceJoinCorrectness:
    @pytest.mark.parametrize("algo", sorted(LOCAL_JOIN_ALGORITHMS))
    @pytest.mark.parametrize("d", [0.0, 0.5, 2.0])
    def test_matches_brute_force_points_lines(self, algo, d):
        left, right = points(150, 1), lines(40, 2)
        pred = within_distance(d)
        got = local_join(algo, left, right, JtsLikeEngine(), predicate=pred)
        want = sorted(
            (i, j)
            for i in range(len(left))
            for j in range(len(right))
            if geometry_distance(left[i], right[j]) <= d
        )
        assert got == want

    @pytest.mark.parametrize("algo", sorted(LOCAL_JOIN_ALGORITHMS))
    def test_line_line_distance_join(self, algo):
        left, right = lines(30, 3), lines(30, 4)
        pred = within_distance(1.0)
        got = local_join(algo, left, right, JtsLikeEngine(), predicate=pred)
        want = sorted(
            (i, j)
            for i in range(len(left))
            for j in range(len(right))
            if geometry_distance(left[i], right[j]) <= 1.0
        )
        assert got == want

    def test_engines_agree_on_distance_join(self):
        left, right = points(100, 5), lines(25, 6)
        pred = within_distance(1.5)
        a = local_join("indexed_nested_loop", left, right, JtsLikeEngine(), predicate=pred)
        b = local_join("indexed_nested_loop", left, right, GeosLikeEngine(), predicate=pred)
        assert a == b

    def test_zero_distance_equals_intersects_for_touching(self):
        # within_distance(0) is exactly "touching or crossing".
        a = [PolyLine([(0, 0), (2, 2)])]
        b = [PolyLine([(0, 2), (2, 0)]), PolyLine([(5, 5), (6, 6)])]
        pred = within_distance(0.0)
        got = local_join("plane_sweep", a, b, JtsLikeEngine(), predicate=pred)
        want = local_join("plane_sweep", a, b, JtsLikeEngine(), predicate=INTERSECTS)
        assert got == want == [(0, 0)]

    def test_growing_distance_grows_result(self):
        left, right = points(120, 7), lines(30, 8)
        sizes = [
            len(local_join("indexed_nested_loop", left, right, JtsLikeEngine(),
                           predicate=within_distance(d)))
            for d in (0.1, 1.0, 5.0)
        ]
        assert sizes[0] <= sizes[1] <= sizes[2]
        assert sizes[2] > sizes[0]
