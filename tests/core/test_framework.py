"""Framework data-model tests (Stage/StageStep/StageTrace rendering)."""

from repro.core import DataAccessModel, RunsOn, Stage, StageStep, StageTrace
from repro.core.framework import compare_traces


def demo_trace():
    return StageTrace(
        system="DemoSys",
        access_model=DataAccessModel.RANDOM,
        geometry_library="jts",
        platform="hadoop",
        steps=[
            StageStep("sample", Stage.PREPROCESSING, RunsOn.MAPPER, True, True),
            StageStep("pair", Stage.GLOBAL_JOIN, RunsOn.MASTER, True, False,
                      description="serial on the master"),
            StageStep("join", Stage.LOCAL_JOIN, RunsOn.MAPPER, True, True),
        ],
    )


class TestStageTrace:
    def test_steps_in(self):
        trace = demo_trace()
        assert [s.name for s in trace.steps_in(Stage.PREPROCESSING)] == ["sample"]
        assert [s.name for s in trace.steps_in(Stage.GLOBAL_JOIN)] == ["pair"]

    def test_hdfs_touch_points_counts_reads_and_writes(self):
        # sample: 2, pair: 1, join: 2 -> 5
        assert demo_trace().hdfs_touch_points == 5

    def test_serial_steps(self):
        serial = demo_trace().serial_steps
        assert [s.name for s in serial] == ["pair"]

    def test_render(self):
        text = demo_trace().render()
        assert "DemoSys" in text
        assert "[preprocessing]" in text
        assert "reads HDFS, writes HDFS" in text
        assert "serial on the master" in text
        assert "HDFS touch points: 5" in text

    def test_render_skips_empty_stages(self):
        trace = StageTrace(
            system="X", access_model=DataAccessModel.FUNCTIONAL,
            geometry_library="jts", platform="spark",
            steps=[StageStep("only", Stage.LOCAL_JOIN, RunsOn.EXECUTOR)],
        )
        text = trace.render()
        assert "[local join]" in text
        assert "[preprocessing]" not in text


class TestCompareTraces:
    def test_table_layout(self):
        text = compare_traces([demo_trace(), demo_trace()])
        lines = text.splitlines()
        assert lines[0].startswith("system")
        assert len(lines) == 3
        assert "DemoSys" in lines[1]

    def test_columns(self):
        header = compare_traces([demo_trace()]).splitlines()[0]
        for col in ("platform", "access", "geometry", "steps", "serial", "hdfs_io"):
            assert col in header
