"""Documentation guarantees: every public item carries a docstring.

The deliverable requires doc comments on every public item; this test
walks the package and enforces it structurally, so the guarantee cannot
rot silently.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _finder, name, _ispkg in pkgutil.walk_packages(repro.__path__, "repro.")
    if not name.endswith("__main__")
]


def public_members(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    for name in names:
        obj = getattr(module, name)
        # Only report items defined in this package (not numpy etc.).
        mod = getattr(obj, "__module__", "") or ""
        if mod.startswith("repro") and (
            inspect.isclass(obj) or inspect.isfunction(obj)
        ):
            yield name, obj


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in public_members(module):
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(name)
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if inspect.isfunction(meth) and not (
                    meth.__doc__ and meth.__doc__.strip()
                ):
                    missing.append(f"{name}.{meth_name}")
    assert not missing, f"{module_name}: missing docstrings on {missing}"


def test_package_exposes_version():
    assert repro.__version__ == "1.1.0"


def test_top_level_exports_resolve():
    for name in ("spatial_join", "run_experiment", "make_system",
                 "RunEnvironment", "RunReport", "EXPERIMENTS"):
        assert getattr(repro, name) is not None
    assert "spatial_join" in dir(repro)
