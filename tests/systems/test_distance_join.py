"""Distance-join integration tests across the three systems.

The paper's introduction motivates "matching taxi pickup/drop-off
locations with road segments through point-to-nearest-polyline distance
computation"; these tests run that workload end to end.
"""

import pytest

from repro.core import within_distance
from repro.data import taxi_points, tiger_edges
from repro.data.synthetic import DOMAIN_NYC
from repro.geometry import geometry_distance
from repro.systems import ALL_SYSTEMS, RunEnvironment, make_system


@pytest.fixture(scope="module")
def taxi_roads():
    pts = taxi_points(500, seed=31)
    roads = tiger_edges(400, seed=32, domain=DOMAIN_NYC)
    return pts, roads


def brute(pts, roads, d):
    return frozenset(
        (i, j)
        for i, p in enumerate(pts)
        for j, r in enumerate(roads)
        if geometry_distance(p, r) <= d
    )


class TestTaxiToRoads:
    @pytest.mark.parametrize("system_name", sorted(ALL_SYSTEMS))
    @pytest.mark.parametrize("d", [0.001, 0.005])
    def test_exact_result(self, system_name, d, taxi_roads):
        pts, roads = taxi_roads
        env = RunEnvironment.create(block_size=1 << 13)
        report = make_system(system_name).run(env, pts, roads, within_distance(d))
        assert report.ok, report.failure
        assert report.pairs == brute(pts, roads, d)

    def test_all_systems_agree(self, taxi_roads):
        pts, roads = taxi_roads
        results = set()
        for name in sorted(ALL_SYSTEMS):
            env = RunEnvironment.create(block_size=1 << 13)
            results.add(
                make_system(name).run(env, pts, roads, within_distance(0.003)).pairs
            )
        assert len(results) == 1

    def test_monotone_in_distance(self, taxi_roads):
        pts, roads = taxi_roads
        prev = frozenset()
        for d in (0.0005, 0.002, 0.008):
            env = RunEnvironment.create(block_size=1 << 13)
            pairs = make_system("SpatialSpark").run(
                env, pts, roads, within_distance(d)
            ).pairs
            assert prev <= pairs
            prev = pairs

    def test_distance_join_charges_distance_ops(self, taxi_roads):
        pts, roads = taxi_roads
        env = RunEnvironment.create(block_size=1 << 13)
        report = make_system("SpatialSpark").run(env, pts, roads, within_distance(0.005))
        assert report.counters["geom.dist_tests"] > 0
        assert report.counters["geom.pip_tests"] == 0  # no polygon probes here


class TestDistanceJoinThroughRunner:
    def test_spatialhadoop_margin_pairing(self, taxi_roads):
        # A margin large enough that partitions which do not intersect must
        # still be paired; correctness would break if pairing ignored it.
        pts, roads = taxi_roads
        d = 0.02
        env = RunEnvironment.create(block_size=1 << 12)
        report = make_system("SpatialHadoop").run(env, pts, roads, within_distance(d))
        assert report.pairs == brute(pts, roads, d)
