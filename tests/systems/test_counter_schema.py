"""Runtime check of the counter-key registry (CTR001's dynamic twin).

The static rule proves every *literal* charge site uses a registered
key; this proves the registry is also complete at runtime — a full run
of each system may only ever touch keys in ``COUNTER_SCHEMA``, on every
execution backend.  A key observed here but missing from the schema is
either a typo at a charge site or a schema that lagged a new substrate.
"""

import pytest

from repro.cluster.costmodel import DEFAULT_CPU_COSTS
from repro.data import census_blocks, taxi_points
from repro.metrics import COUNTER_SCHEMA
from repro.systems import ALL_SYSTEMS, RunEnvironment, make_system

SYSTEMS = sorted(ALL_SYSTEMS)


@pytest.mark.parametrize("system_name", SYSTEMS)
def test_observed_keys_are_subset_of_schema(system_name):
    env = RunEnvironment.create(block_size=1 << 14)
    report = make_system(system_name).run(
        env, taxi_points(300, seed=5), census_blocks(60, seed=6)
    )
    assert report.ok, report.failure
    observed = set(report.counters)
    unregistered = sorted(observed - set(COUNTER_SCHEMA))
    assert not unregistered, (
        f"{system_name} charged unregistered counter keys: {unregistered} — "
        "register them in repro.metrics.COUNTER_SCHEMA"
    )
    # Per-phase ledgers are drawn from the same registry.
    for phase in report.clock.phases:
        assert set(phase.counters) <= set(COUNTER_SCHEMA), phase.name


@pytest.mark.parametrize("backend", ["serial", "thread"])
def test_parallel_backends_stay_inside_schema(backend):
    env = RunEnvironment.create(block_size=1 << 14, backend=backend, workers=2)
    report = make_system("SpatialSpark").run(
        env, taxi_points(300, seed=5), census_blocks(60, seed=6)
    )
    assert report.ok, report.failure
    assert set(report.counters) <= set(COUNTER_SCHEMA)


def test_cost_model_prices_only_registered_keys():
    # Every key the cost model knows a price for must exist in the
    # ledger schema (a priced-but-never-charged key is calibration debt;
    # a charged-but-unpriced key is silently free).
    assert set(DEFAULT_CPU_COSTS) <= set(COUNTER_SCHEMA)


def test_schema_keys_are_well_formed():
    for key, description in COUNTER_SCHEMA.items():
        assert isinstance(key, str) and isinstance(description, str)
        group, _, leaf = key.partition(".")
        assert group and leaf, f"schema key {key!r} must be '<group>.<name>'"
        assert key == key.lower()
        assert description.strip()
