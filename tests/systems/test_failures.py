"""Failure-model tests: the emergent broken-pipe / OOM matrix of Table 2."""

import pytest

from repro.cluster import PAPER_CONFIGS
from repro.data import dataset, encode_dataset
from repro.systems import HadoopGIS, RunEnvironment, SpatialHadoop, SpatialSpark


def _staged_scale(generated):
    """(record_scale, byte_scale) on the staged-TSV basis the runner uses."""
    staged = sum(len(line) + 1 for line in encode_dataset(generated.geometries))
    return (generated.record_scale, generated.spec.logical_bytes / staged)


def env_for(config_name, left, right, block_size=1 << 13):
    return RunEnvironment.create(
        PAPER_CONFIGS()[config_name],
        block_size=block_size,
        scale_a=_staged_scale(left),
        scale_b=_staged_scale(right),
    )


@pytest.fixture(scope="module")
def full_taxi_nycb():
    taxi = dataset("taxi").generate(scale=1500 / dataset("taxi").logical_records, seed=3)
    nycb = dataset("nycb").generate(scale=1500 / dataset("nycb").logical_records, seed=3)
    return taxi, nycb


@pytest.fixture(scope="module")
def sample_taxi_nycb():
    taxi1m = dataset("taxi1m").generate(
        scale=1500 / dataset("taxi1m").logical_records, seed=3
    )
    nycb = dataset("nycb").generate(scale=1500 / dataset("nycb").logical_records, seed=3)
    return taxi1m, nycb


class TestHadoopGISBrokenPipes:
    """Paper: HadoopGIS fails ALL full-dataset runs (even 128 GB WS),
    and the sample runs fail on EC2 but succeed on the workstation."""

    @pytest.mark.parametrize("config", ["WS", "EC2-10", "EC2-8", "EC2-6"])
    def test_full_datasets_fail_everywhere(self, config, full_taxi_nycb):
        taxi, nycb = full_taxi_nycb
        report = HadoopGIS().run(env_for(config, taxi, nycb), taxi.geometries, nycb.geometries)
        assert not report.ok
        assert report.failure_kind == "broken_pipe"
        assert "broken pipe" in report.failure

    def test_sample_succeeds_on_workstation(self, sample_taxi_nycb):
        taxi1m, nycb = sample_taxi_nycb
        report = HadoopGIS().run(
            env_for("WS", taxi1m, nycb), taxi1m.geometries, nycb.geometries
        )
        assert report.ok, report.failure

    @pytest.mark.parametrize("config", ["EC2-10", "EC2-8", "EC2-6"])
    def test_sample_fails_on_ec2(self, config, sample_taxi_nycb):
        taxi1m, nycb = sample_taxi_nycb
        report = HadoopGIS().run(
            env_for(config, taxi1m, nycb), taxi1m.geometries, nycb.geometries
        )
        assert not report.ok
        assert report.failure_kind == "broken_pipe"


class TestSpatialSparkOOM:
    """Paper: SpatialSpark handles full datasets on WS (128 GB) and EC2-10
    (150 GB) but runs out of memory on EC2-8 and EC2-6."""

    @pytest.mark.parametrize(
        "config,should_succeed",
        [("WS", True), ("EC2-10", True), ("EC2-8", False), ("EC2-6", False)],
    )
    def test_full_dataset_matrix(self, config, should_succeed, full_taxi_nycb):
        taxi, nycb = full_taxi_nycb
        report = SpatialSpark().run(
            env_for(config, taxi, nycb), taxi.geometries, nycb.geometries
        )
        assert report.ok == should_succeed
        if not should_succeed:
            assert report.failure_kind == "oom"
            assert "out of memory" in report.failure

    @pytest.mark.parametrize("config", ["WS", "EC2-10", "EC2-8", "EC2-6"])
    def test_samples_fit_everywhere(self, config, sample_taxi_nycb):
        taxi1m, nycb = sample_taxi_nycb
        report = SpatialSpark().run(
            env_for(config, taxi1m, nycb), taxi1m.geometries, nycb.geometries
        )
        assert report.ok, report.failure

    def test_memory_pressure_reported(self, full_taxi_nycb):
        taxi, nycb = full_taxi_nycb
        ws = SpatialSpark().run(env_for("WS", taxi, nycb), taxi.geometries, nycb.geometries)
        assert 0.9 < ws.memory_pressure <= 1.0  # barely fits, as calibrated
        ec10 = SpatialSpark().run(
            env_for("EC2-10", taxi, nycb), taxi.geometries, nycb.geometries
        )
        assert ec10.memory_pressure < ws.memory_pressure


class TestSpatialHadoopRobustness:
    """Paper: SpatialHadoop succeeds in every configuration."""

    @pytest.mark.parametrize("config", ["WS", "EC2-10", "EC2-8", "EC2-6"])
    def test_always_succeeds(self, config, full_taxi_nycb):
        taxi, nycb = full_taxi_nycb
        report = SpatialHadoop().run(
            env_for(config, taxi, nycb), taxi.geometries, nycb.geometries
        )
        assert report.ok, report.failure


class TestFailuresAreReports:
    def test_failed_run_keeps_partial_clock(self, full_taxi_nycb):
        taxi, nycb = full_taxi_nycb
        report = HadoopGIS().run(
            env_for("WS", taxi, nycb), taxi.geometries, nycb.geometries
        )
        assert not report.ok
        assert report.pairs is None
        assert report.clock.phases  # work done before the failure is recorded
