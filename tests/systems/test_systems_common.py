"""Cross-system tests: correctness parity, reports, stage traces."""

import numpy as np
import pytest

from repro.core import DataAccessModel, Stage
from repro.data import census_blocks, linear_water, taxi_points, tiger_edges
from repro.geometry import geometries_intersect
from repro.systems import (
    ALL_SYSTEMS,
    HadoopGIS,
    RunEnvironment,
    SpatialHadoop,
    SpatialSpark,
    make_system,
)

SYSTEMS = sorted(ALL_SYSTEMS)


@pytest.fixture(scope="module")
def pip_workload():
    pts = taxi_points(600, seed=11)
    blocks = census_blocks(120, seed=12)
    brute = frozenset(
        (i, j)
        for i, p in enumerate(pts)
        for j, b in enumerate(blocks)
        if geometries_intersect(p, b)
    )
    return pts, blocks, brute


@pytest.fixture(scope="module")
def polyline_workload():
    edges = tiger_edges(900, seed=13)
    water = linear_water(250, seed=14)
    brute = frozenset(
        (i, j)
        for i, a in enumerate(edges)
        for j, b in enumerate(water)
        if a.mbr.intersects(b.mbr) and geometries_intersect(a, b)
    )
    return edges, water, brute


class TestFactory:
    def test_make_system(self):
        for name in SYSTEMS:
            assert make_system(name).name == name

    def test_unknown_system(self):
        with pytest.raises(ValueError):
            make_system("GeoSpark")


class TestJoinCorrectness:
    @pytest.mark.parametrize("system_name", SYSTEMS)
    def test_point_in_polygon_join_exact(self, system_name, pip_workload):
        pts, blocks, brute = pip_workload
        env = RunEnvironment.create(block_size=1 << 14)
        report = make_system(system_name).run(env, pts, blocks)
        assert report.ok, report.failure
        assert report.pairs == brute

    @pytest.mark.parametrize("system_name", SYSTEMS)
    def test_polyline_join_exact(self, system_name, polyline_workload):
        edges, water, brute = polyline_workload
        env = RunEnvironment.create(block_size=1 << 14)
        report = make_system(system_name).run(env, edges, water)
        assert report.ok, report.failure
        assert report.pairs == brute

    def test_all_systems_agree(self, pip_workload):
        pts, blocks, _ = pip_workload
        results = set()
        for name in SYSTEMS:
            env = RunEnvironment.create(block_size=1 << 13)
            results.add(make_system(name).run(env, pts, blocks).pairs)
        assert len(results) == 1

    @pytest.mark.parametrize("system_name", SYSTEMS)
    def test_empty_result_join(self, system_name):
        # Disjoint datasets: everything runs but nothing matches.
        edges = tiger_edges(100, seed=1)
        from repro.geometry import PolyLine

        far = [PolyLine(l.coords + 500.0) for l in linear_water(30, seed=2)]
        env = RunEnvironment.create(block_size=1 << 13)
        report = make_system(system_name).run(env, edges, far)
        assert report.ok
        assert report.pairs == frozenset()


class TestReports:
    @pytest.mark.parametrize("system_name", SYSTEMS)
    def test_report_structure(self, system_name, pip_workload):
        pts, blocks, _ = pip_workload
        env = RunEnvironment.create(block_size=1 << 14)
        report = make_system(system_name).run(env, pts, blocks)
        assert report.system == system_name
        assert report.cluster == "WS"
        assert report.ok and report.failure is None
        assert report.clock.phases, "no phases recorded"
        assert report.engine_profile  # jts or geos profile attached

    def test_breakdown_groups(self, pip_workload):
        pts, blocks, _ = pip_workload
        env = RunEnvironment.create(block_size=1 << 14)
        report = SpatialHadoop().run(env, pts, blocks)
        groups = {p.group for p in report.clock.phases}
        assert groups == {"index_a", "index_b", "join"}

    def test_costed_breakdown_sums(self, pip_workload):
        pts, blocks, _ = pip_workload
        env = RunEnvironment.create(block_size=1 << 14)
        report = SpatialHadoop().run(env, pts, blocks).costed()
        b = report.breakdown_seconds()
        assert b["TOT"] == pytest.approx(b["IA"] + b["IB"] + b["DJ"])
        assert b["TOT"] > 0

    def test_engine_assignment_matches_paper(self):
        # HadoopGIS links GEOS; the other two link JTS.
        assert HadoopGIS.engine_name == "geos"
        assert SpatialHadoop.engine_name == "jts"
        assert SpatialSpark.engine_name == "jts"

    def test_breakdown_requires_costed_clock(self, pip_workload):
        pts, blocks, _ = pip_workload
        env = RunEnvironment.create(block_size=1 << 14)
        report = SpatialHadoop().run(env, pts, blocks)
        with pytest.raises(RuntimeError, match="has not been costed"):
            report.breakdown_seconds()
        report.costed()
        assert report.breakdown_seconds()["TOT"] > 0

    def test_costed_with_explicit_cluster(self, pip_workload):
        # EC2-<n> sweep configs aren't in the paper tables; costing them
        # needs the explicit-ClusterConfig path of RunReport.costed.
        from repro.cluster import ec2_config

        pts, blocks, _ = pip_workload
        config = ec2_config(7)
        env = RunEnvironment.create(config, block_size=1 << 14)
        report = SpatialHadoop().run(env, pts, blocks)
        with pytest.raises(ValueError, match="unknown cluster"):
            report.costed()
        report.costed(cluster=config)
        assert report.breakdown_seconds()["TOT"] > 0


class TestStageTraces:
    """The Fig.-1 properties the paper derives from the framework."""

    def test_access_models(self):
        assert HadoopGIS().stage_trace().access_model == DataAccessModel.STREAMING
        assert SpatialHadoop().stage_trace().access_model == DataAccessModel.RANDOM
        assert SpatialSpark().stage_trace().access_model == DataAccessModel.FUNCTIONAL

    def test_spatialspark_touches_hdfs_only_on_load(self):
        trace = SpatialSpark().stage_trace()
        readers = [s for s in trace.steps if s.reads_hdfs]
        writers = [s for s in trace.steps if s.writes_hdfs]
        assert len(readers) == 1 and not writers

    def test_hadoopgis_has_most_hdfs_interactions(self):
        touch = {
            name: ALL_SYSTEMS[name]().stage_trace().hdfs_touch_points
            for name in SYSTEMS
        }
        assert touch["HadoopGIS"] > touch["SpatialHadoop"] > touch["SpatialSpark"]

    def test_hadoopgis_serial_local_programs(self):
        from repro.core import RunsOn

        trace = HadoopGIS().stage_trace()
        local = [s for s in trace.serial_steps if s.runs_on == RunsOn.LOCAL_PROGRAM]
        assert len(local) >= 3  # partition gen, dedup, sample combine

    def test_spatialhadoop_global_join_on_master(self):
        from repro.core import RunsOn

        trace = SpatialHadoop().stage_trace()
        gj = trace.steps_in(Stage.GLOBAL_JOIN)
        assert any(s.runs_on == RunsOn.MASTER for s in gj)

    def test_every_system_covers_all_stages(self):
        for name in SYSTEMS:
            trace = ALL_SYSTEMS[name]().stage_trace()
            for stage in Stage:
                assert trace.steps_in(stage), f"{name} missing {stage}"
