"""Phase-group identity in the skew report is structural, not ``id()``.

Mirror of the ``Counters`` stale-address regression tests (PR 4): skew
groups were keyed by ``id(phase)``, the same recycled-address bug class
the redirect tokens fixed in the ledger.  Groups are now keyed by the
phase span's tree path, so grouping is a pure function of the tree's
*structure* — identical for copies, pickles, and across processes.
"""

import copy
import pickle
from dataclasses import asdict

from repro.metrics import COUNTER_SCHEMA, Counters
from repro.trace.core import Span
from repro.trace.skew import _PREFERRED_COUNTERS, _phase_task_groups, skew_report


def make_task(name, seconds, **counters):
    return Span(
        name=name,
        kind="task",
        seconds=seconds,
        counters=Counters(counters),
        attrs={"part": name},
    )


def make_tree():
    """run -> [phase local(2 tasks), stage shuffle(3 tasks), phase local(2 tasks)].

    The first and third phases share a *name* deliberately: only a
    structural identity keeps them distinct without relying on object
    addresses.
    """
    first = Span(name="local", kind="phase", children=[
        make_task("p0", 0.010, **{"join.candidates": 10.0}),
        make_task("p1", 0.090, **{"join.candidates": 90.0}),
    ])
    shuffle = Span(name="shuffle", kind="stage", children=[
        make_task("s0", 0.020, **{"cpu.ops": 5.0}),
        make_task("s1", 0.021, **{"cpu.ops": 6.0}),
        make_task("s2", 0.500, **{"cpu.ops": 400.0}),
    ])
    second = Span(name="local", kind="phase", children=[
        make_task("q0", 0.030, **{"join.candidates": 30.0}),
        make_task("q1", 0.031, **{"join.candidates": 31.0}),
    ])
    return Span(name="run", kind="run", children=[first, shuffle, second])


class TestStructuralGroupIdentity:
    def test_same_name_phases_stay_distinct(self):
        groups = _phase_task_groups(make_tree())
        assert [(phase.name, len(tasks)) for phase, tasks in groups] == [
            ("local", 2),
            ("shuffle", 3),
            ("local", 2),
        ]

    def test_groups_key_on_tree_path_not_object_identity(self):
        tree = make_tree()
        original = _phase_task_groups(tree)
        clone = _phase_task_groups(copy.deepcopy(tree))
        # Every object address differs between the trees; grouping must not.
        assert [(p.name, [t.name for t in ts]) for p, ts in original] == [
            (p.name, [t.name for t in ts]) for p, ts in clone
        ]

    def test_report_identical_for_deepcopy_and_pickle_roundtrip(self):
        tree = make_tree()
        baseline = [asdict(row) for row in skew_report(tree, bins=4)]
        for variant in (copy.deepcopy(tree), pickle.loads(pickle.dumps(tree))):
            assert [asdict(row) for row in skew_report(variant, bins=4)] == baseline

    def test_report_rows_follow_preorder(self):
        rows = skew_report(make_tree(), bins=4)
        assert [row.phase for row in rows] == ["local", "shuffle", "local"]
        assert [row.tasks for row in rows] == [2, 3, 2]

    def test_straggler_attribution_per_group(self):
        rows = skew_report(make_tree(), bins=4, top_k=1)
        by_position = {i: row for i, row in enumerate(rows)}
        assert by_position[1].hottest[0]["attrs"] == {"part": "s2"}
        # The two same-name phases report their own counter totals.
        assert by_position[0].counter_stats["join.candidates"]["total"] == 100.0
        assert by_position[2].counter_stats["join.candidates"]["total"] == 61.0


class TestPreferredCountersAreRegistered:
    def test_preferred_counters_exist_in_schema(self):
        # Earlier revisions preferred keys no substrate ever charged
        # ("join.results", "refine.ops"), so the preference list silently
        # never matched; every entry must be a registered ledger key.
        missing = [k for k in _PREFERRED_COUNTERS if k not in COUNTER_SCHEMA]
        assert missing == []

    def test_preferred_counters_drive_column_choice(self):
        rows = skew_report(make_tree(), bins=4)
        assert list(rows[0].counter_stats) == ["join.candidates"]
        assert list(rows[1].counter_stats) == ["cpu.ops"]
