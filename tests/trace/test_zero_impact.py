"""Tracing is zero-cost-to-results.

Spans only snapshot-and-diff the ledgers the run was writing anyway —
never charge, never redirect — so a traced run must produce bit-identical
result pairs and counter totals to an untraced one, for every system ×
local-join algorithm, on serial and parallel backends alike.
"""

import pytest

from repro import spatial_join
from repro.data.synthetic import census_blocks, taxi_points

#: system × algorithm grid: every local-join code path of every system.
CASES = [
    ("HadoopGIS", {}),
    ("SpatialHadoop", {"local_algorithm": "plane_sweep"}),
    ("SpatialHadoop", {"local_algorithm": "sync_rtree"}),
    ("SpatialSpark", {"broadcast_join": False}),
    ("SpatialSpark", {"broadcast_join": True}),
]


def case_id(case):
    system, kwargs = case
    suffix = ",".join(f"{k}={v}" for k, v in kwargs.items())
    return f"{system}({suffix})" if suffix else system


def run(system, system_kwargs, *, trace, backend="serial"):
    return spatial_join(
        taxi_points(300, seed=21),
        census_blocks(40, seed=22),
        system=system,
        cluster="WS",
        workers=1 if backend == "serial" else 3,
        backend=backend,
        seed=5,
        system_kwargs=system_kwargs,
        trace=trace,
    )


@pytest.mark.parametrize("case", CASES, ids=case_id)
class TestZeroImpact:
    def test_results_identical_traced_vs_untraced(self, case):
        system, kwargs = case
        untraced = run(system, kwargs, trace=False)
        traced = run(system, kwargs, trace=True)
        assert untraced.trace is None
        assert traced.trace is not None
        assert traced.pairs == untraced.pairs
        # dict equality on floats is bitwise here: same charges, same order.
        assert dict(traced.counters) == dict(untraced.counters)
        assert traced.status == untraced.status

    def test_results_identical_on_parallel_backend(self, case):
        system, kwargs = case
        untraced = run(system, kwargs, trace=False, backend="thread")
        traced = run(system, kwargs, trace=True, backend="thread")
        assert traced.pairs == untraced.pairs
        assert dict(traced.counters) == dict(untraced.counters)


class TestPhaseSpansMatchClock:
    """The acceptance cross-check: every phase span's counter deltas equal
    the same-named ``PhaseRecord``'s counters, because the span brackets
    exactly the snapshot→record window the clock uses."""

    # Pin the partitioned pipeline: with plan="auto" the planner may pick
    # broadcast for SpatialSpark at this scale, which has a single phase.
    @pytest.mark.parametrize(
        "case",
        CASES[:3] + [("SpatialSpark", {"broadcast_join": False})],
        ids=case_id,
    )
    def test_phase_spans_equal_phase_records(self, case):
        system, kwargs = case
        report = run(system, kwargs, trace=True)
        spans_by_name = {}
        for sp in report.trace.walk():
            if sp.kind == "phase":
                spans_by_name.setdefault(sp.name, []).append(sp)
        matched = 0
        for record in report.clock.phases:
            spans = spans_by_name.get(record.name)
            if not spans:
                continue
            sp = spans.pop(0)  # names recur in record order
            assert dict(sp.counters) == dict(record.counters), record.name
            matched += 1
        assert matched >= 3, f"{system}: too few phase spans matched clock records"

    def test_phase_wall_clock_nests_inside_run(self):
        report = run("SpatialHadoop", {}, trace=True)
        root = report.trace
        for sp in root.walk():
            if sp.kind == "phase":
                assert sp.seconds >= 0.0
                assert root.start <= sp.start
                assert sp.end <= root.end + 1e-9
        phase_total = sum(s.seconds for s in root.walk() if s.kind == "phase")
        # Phases don't nest inside each other, so their summed wall clock
        # fits inside the root session's.
        assert phase_total <= root.seconds + 1e-9
