"""Exporters and analyses over recorded traces.

Covers the Chrome trace-event exporter (Perfetto-loadable JSON), the text
tree renderer, the per-partition skew report (on a deliberately skewed
synthetic dataset and on a fully deterministic executor workload), the
explain integration (measured wall-clock next to modelled seconds), the
CLI flags, and the outside-a-session no-op guarantees.
"""

import json

import numpy as np
import pytest

from repro import spatial_join
from repro.cli import main
from repro.data.synthetic import DOMAIN_NYC, census_blocks, taxi_points
from repro.exec import SerialBackend, merge_outcomes
from repro.experiments import explain_report, render_explanation
from repro.geometry.primitives import Point
from repro.metrics import Counters
from repro.trace import (
    Tracer,
    active,
    annotate,
    attach,
    chrome_trace,
    current_span,
    render_skew,
    render_tree,
    skew_report,
    span,
    write_chrome_trace,
)


def run_traced(system="SpatialHadoop", left=None, right=None):
    return spatial_join(
        left if left is not None else taxi_points(300, seed=31),
        right if right is not None else census_blocks(40, seed=32),
        system=system,
        cluster="WS",
        seed=9,
        trace=True,
    )


def skewed_points(n=600, seed=33, hot_fraction=0.9):
    """Points crammed into one tiny corner cell: one partition gets ~all
    the join work, the rest next to nothing — a deliberate straggler."""
    rng = np.random.default_rng(seed)
    hot = int(n * hot_fraction)
    d = DOMAIN_NYC
    xs = np.concatenate([
        d.xmin + rng.random(hot) * d.width * 0.03,
        d.xmin + rng.random(n - hot) * d.width,
    ])
    ys = np.concatenate([
        d.ymin + rng.random(hot) * d.height * 0.03,
        d.ymin + rng.random(n - hot) * d.height,
    ])
    return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


@pytest.fixture(scope="module")
def skewed_report():
    """A traced join over the hot-cell dataset on a *uniform grid*.

    The grid partitioner does not adapt to density (unlike the sampling
    BSP/STR schemes, which exist to balance exactly this), so the corner
    cell keeps the whole hotspot and its local-join task is a genuine
    straggler."""
    from repro.core import GridPartitioner

    return spatial_join(
        skewed_points(),
        census_blocks(60, seed=34),
        system="SpatialHadoop",
        cluster="WS",
        seed=9,
        system_kwargs={"partitioner": GridPartitioner(), "n_partitions": 9},
        trace=True,
    )


class TestChromeTrace:
    def test_events_are_valid_complete_events(self):
        report = run_traced()
        doc = chrome_trace(report.trace)
        spans = list(report.trace.walk())
        assert doc["otherData"]["spans"] == len(spans)
        events = doc["traceEvents"]
        assert len(events) == len(spans)
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
        # The root event starts the timeline.
        assert events[0]["ts"] == 0.0
        assert events[0]["name"] == report.trace.name
        # Kinds become categories (Perfetto's track filter).
        assert {e["cat"] for e in events} >= {"experiment", "run", "phase", "task"}

    def test_json_round_trips(self, tmp_path):
        report = run_traced("SpatialSpark")
        path = tmp_path / "trace.json"
        assert write_chrome_trace(report.trace, path) == path
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(chrome_trace(report.trace)))
        assert loaded["traceEvents"]

    def test_counter_deltas_travel_in_args(self):
        report = run_traced()
        events = chrome_trace(report.trace)["traceEvents"]
        with_counters = [e for e in events if e["args"].get("counters")]
        assert with_counters, "no event carried counter deltas"
        for event in with_counters:
            for value in event["args"]["counters"].values():
                assert isinstance(value, float)


class TestRenderTree:
    def test_tree_shows_hierarchy_and_counters(self):
        report = run_traced()
        text = render_tree(report.trace, min_seconds=0.0)
        lines = text.splitlines()
        assert lines[0].lstrip().startswith("spatial_join")
        assert any("SpatialHadoop" in line for line in lines)
        # Children are indented below their parents.
        assert any(line.startswith("  ") for line in lines)

    def test_min_seconds_prunes(self):
        report = run_traced()
        full = render_tree(report.trace, min_seconds=0.0)
        pruned = render_tree(report.trace, min_seconds=10.0)
        assert len(pruned.splitlines()) < len(full.splitlines())


class TestSkewReport:
    def test_deterministic_executor_skew(self):
        # One task does 100x the median's work: the counter-based
        # straggler columns must say exactly that, on any machine.
        shared = Counters()
        backend = SerialBackend()
        amounts = [1, 1, 100, 1]

        def make(amount):
            def body():
                shared.add("join.candidates", amount)

            return body

        tracer = Tracer()
        with tracer.session("root", counters=shared):
            with span("local_join", kind="phase", counters=shared):
                outcomes = backend.run_tasks(
                    "local_join", [make(a) for a in amounts], shared
                )
                merge_outcomes(outcomes, shared)
        rows = skew_report(tracer.root)
        assert len(rows) == 1
        row = rows[0]
        assert row.phase == "local_join"
        assert row.tasks == 4
        stats = row.counter_stats["join.candidates"]
        assert stats["total"] == 103.0
        assert stats["max"] == 100.0
        assert stats["p50"] == 1.0
        assert stats["max_over_median"] == 100.0
        assert sum(stats["histogram"]) == 4
        assert row.straggler_ratio >= 1.0
        assert len(row.hottest) == 4
        assert sum(row.histogram) == 4

    def test_skewed_dataset_yields_straggler_ratios(self, skewed_report):
        rows = skew_report(skewed_report.trace)
        assert rows, "no multi-task phase in the trace"
        join_rows = [
            r for r in rows
            if any(
                s["max_over_median"] >= 2.0 for s in r.counter_stats.values()
            )
        ]
        assert join_rows, "hot-cell dataset produced no counter skew"
        for row in rows:
            assert row.straggler_ratio >= 1.0
            assert row.p95_ratio >= 0.0
            assert row.hottest
            assert sum(row.histogram) == row.tasks

    def test_counter_keys_pin_columns(self, skewed_report):
        rows = skew_report(skewed_report.trace, counter_keys=["join.candidates"])
        assert any(list(r.counter_stats) == ["join.candidates"] for r in rows)

    def test_render_skew_table(self, skewed_report):
        text = render_skew(skew_report(skewed_report.trace))
        lines = text.splitlines()
        assert "straggler" in lines[0]
        assert any(line.lstrip().startswith("·") for line in lines)
        assert any(line.lstrip().startswith("★") for line in lines)


class TestExplainIntegration:
    def test_measured_seconds_come_from_phase_spans(self):
        report = run_traced()
        costs = explain_report(report)
        measured = [c for c in costs if c.measured_seconds is not None]
        assert measured, "traced run produced no measured phase costs"
        span_seconds = {}
        for sp in report.trace.walk():
            if sp.kind == "phase":
                span_seconds.setdefault(sp.name, []).append(sp.seconds)
        for cost in measured:
            assert cost.measured_seconds in span_seconds[cost.name]

    def test_untraced_run_has_no_measured_column(self):
        report = spatial_join(
            taxi_points(200, seed=31), census_blocks(30, seed=32),
            system="SpatialSpark", seed=9,
        )
        costs = explain_report(report)
        assert all(c.measured_seconds is None for c in costs)
        assert "measured" not in render_explanation(costs).splitlines()[0]

    def test_render_shows_measured_column(self):
        report = run_traced()
        text = render_explanation(explain_report(report))
        assert "measured" in text.splitlines()[0]
        assert "ms" in text


class TestCli:
    def test_trace_flag_writes_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "run.trace.json"
        rc = main([
            "run", "taxi-nycb", "SpatialSpark", "--exec-records", "300",
            "--trace", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert "perfetto" in capsys.readouterr().out

    def test_skew_and_tree_flags_print(self, capsys):
        rc = main([
            "run", "taxi-nycb", "SpatialSpark", "--exec-records", "300",
            "--trace-tree", "--skew",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "straggler" in out
        assert "spatial_join" not in out  # experiment runs use their own root
        assert "experiment:taxi-nycb" in out

    def test_untraced_run_unchanged(self, capsys):
        rc = main(["run", "taxi-nycb", "SpatialSpark", "--exec-records", "300"])
        assert rc == 0
        assert "straggler" not in capsys.readouterr().out


class TestNoOpOutsideSession:
    def test_span_yields_none_and_records_nothing(self):
        counters = Counters()
        assert not active()
        with span("outside", counters=counters, attr=1) as sp:
            counters.add("x", 2)  # repro: noqa[CTR001]
            assert sp is None
            assert current_span() is None
            annotate(ignored=True)  # must not raise
        attach(None)  # must not raise
        assert dict(counters) == {"x": 2.0}

    def test_session_root_captured_even_without_children(self):
        tracer = Tracer()
        with tracer.session("empty") as root:
            assert active()
            assert current_span() is root
        assert not active()
        assert tracer.root is root
        assert tracer.root.children == []
