"""Property tests for the span-tree invariants of :mod:`repro.trace`.

For randomly generated span programs (and for real executor runs), the
recorded tree must satisfy:

* **Nesting** — a child span's ``[start, end]`` interval lies inside its
  parent's when both ran on the same worker (pid, tid).
* **Sibling exclusion** — same-worker sibling spans never overlap.
* **Conservation** — a span's inclusive counter deltas equal its own
  charges plus the sum of its children's, exactly (integer charges lose
  nothing to float re-association because snapshots diff the same ledger
  the charges landed in).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import SerialBackend, ThreadBackend, merge_outcomes
from repro.metrics import Counters
from repro.trace import Tracer, span

KEYS = ("cpu.ops", "io.bytes", "join.results")

charges = st.dictionaries(st.sampled_from(KEYS), st.integers(1, 1_000), max_size=3)
#: A random span program: (charges made inside the span, child programs).
programs = st.recursive(
    st.tuples(charges, st.just(())),
    lambda sub: st.tuples(charges, st.lists(sub, max_size=3)),
    max_leaves=10,
)

#: Shared pools so hypothesis examples don't rebuild thread pools.
THREAD_BACKEND = ThreadBackend(3)
SERIAL_BACKEND = SerialBackend()


def record(program, counters):
    """Run a span program for real: open a span, charge, recurse."""
    charge, children = program
    with span("node", counters=counters):
        for key, amount in charge.items():
            counters.add(key, amount)  # repro: noqa[CTR001]
        for child in children:
            record(child, counters)


def inclusive_charges(program):
    """The charges a program makes inside its root span, descendants included."""
    charge, children = program
    total = dict(charge)
    for child in children:
        for key, value in inclusive_charges(child).items():
            total[key] = total.get(key, 0) + value
    return total


def assert_matches_program(sp, program):
    charge, children = program
    assert len(sp.children) == len(children)
    expected = {k: float(v) for k, v in inclusive_charges(program).items()}
    assert dict(sp.counters) == expected
    # Exclusive view: exactly the charges made in this span's own body.
    assert dict(sp.self_counters()) == {k: float(v) for k, v in charge.items()}
    for child_span, child_program in zip(sp.children, children):
        assert_matches_program(child_span, child_program)


def assert_intervals_wellformed(root):
    for parent in root.walk():
        by_worker = {}
        for child in parent.children:
            worker = (child.pid, child.tid)
            if worker == (parent.pid, parent.tid):
                assert parent.start <= child.start, (parent.name, child.name)
                assert child.end <= parent.end, (parent.name, child.name)
            by_worker.setdefault(worker, []).append(child)
        for siblings in by_worker.values():
            siblings = sorted(siblings, key=lambda s: s.start)
            for earlier, later in zip(siblings, siblings[1:]):
                assert earlier.end <= later.start, (earlier.name, later.name)


class TestRandomPrograms:
    @given(programs)
    def test_counters_conserved_exactly(self, program):
        counters = Counters()
        tracer = Tracer()
        with tracer.session("root", counters=counters):
            record(program, counters)
        root = tracer.root
        assert len(root.children) == 1
        assert_matches_program(root.children[0], program)
        # The session root saw every charge of the whole program.
        assert dict(root.counters) == {
            k: float(v) for k, v in inclusive_charges(program).items()
        }
        # ... and the real ledger holds exactly the same totals: the spans
        # only ever snapshotted it.
        assert dict(counters) == dict(root.counters)

    @given(programs)
    def test_nesting_and_sibling_exclusion(self, program):
        counters = Counters()
        tracer = Tracer()
        with tracer.session("root", counters=counters):
            record(program, counters)
        assert_intervals_wellformed(tracer.root)

    @given(programs)
    def test_fingerprint_ignores_timing(self, program):
        counters_a, counters_b = Counters(), Counters()
        tracer_a, tracer_b = Tracer(), Tracer()
        with tracer_a.session("root", counters=counters_a):
            record(program, counters_a)
        with tracer_b.session("root", counters=counters_b):
            record(program, counters_b)
        # Wall clocks differ between the two runs; fingerprints must not.
        assert tracer_a.root.fingerprint() == tracer_b.root.fingerprint()


class TestExecutorTaskSpans:
    @given(st.lists(charges, min_size=1, max_size=6))
    @settings(deadline=None, max_examples=20)
    def test_task_spans_conserve_on_serial_and_thread(self, task_charges):
        for backend in (SERIAL_BACKEND, THREAD_BACKEND):
            shared = Counters()

            def make(spec):
                def body():
                    for key, amount in spec.items():
                        shared.add(key, amount)  # repro: noqa[CTR001]

                return body

            tracer = Tracer()
            with tracer.session("root", counters=shared):
                with span("stage", kind="phase", counters=shared):
                    outcomes = backend.run_tasks(
                        "stage", [make(spec) for spec in task_charges], shared
                    )
                    merge_outcomes(outcomes, shared)
            phase = tracer.root.children[0]
            # Grafted in task-index order regardless of interleaving.
            assert [c.attrs["index"] for c in phase.children] == list(
                range(len(task_charges))
            )
            for child, spec in zip(phase.children, task_charges):
                assert dict(child.counters) == {
                    k: float(v) for k, v in spec.items()
                }
            # All the phase's work happened inside tasks: nothing exclusive.
            assert dict(phase.self_counters()) == {}
            expected_total = {}
            for spec in task_charges:
                for key, value in spec.items():
                    expected_total[key] = expected_total.get(key, 0.0) + value
            assert dict(phase.counters) == expected_total
            assert dict(shared) == expected_total
            assert_intervals_wellformed(tracer.root)
