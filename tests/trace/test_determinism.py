"""Golden determinism of the span tree.

Everything in a trace except the wall-clock fields — structure, names,
kinds, attributes, counter deltas — must be bit-identical across the
serial / thread / process backends and across repeated same-seed runs,
for all three systems.  :meth:`Span.fingerprint` is exactly that view of
the tree, so these tests compare fingerprints directly.
"""

import pytest

from repro import spatial_join
from repro.data.synthetic import census_blocks, taxi_points
from repro.trace.core import TIMING_FIELDS

SYSTEMS = ("HadoopGIS", "SpatialHadoop", "SpatialSpark")
PARALLEL_BACKENDS = ("thread", "process")


def run_traced(system, backend="serial"):
    return spatial_join(
        taxi_points(300, seed=11),
        census_blocks(40, seed=12),
        system=system,
        cluster="WS",
        workers=1 if backend == "serial" else 3,
        backend=backend,
        seed=7,
        trace=True,
    )


@pytest.mark.parametrize("system", SYSTEMS)
class TestGoldenDeterminism:
    def test_backends_agree_bit_for_bit(self, system):
        serial = run_traced(system)
        assert serial.trace is not None
        for backend in PARALLEL_BACKENDS:
            parallel = run_traced(system, backend)
            assert parallel.trace.fingerprint() == serial.trace.fingerprint(), (
                f"{system}: {backend} trace diverged from serial"
            )
            assert parallel.pairs == serial.pairs
            assert dict(parallel.counters) == dict(serial.counters)

    def test_repeated_runs_agree(self, system):
        first = run_traced(system)
        second = run_traced(system)
        assert first.trace.fingerprint() == second.trace.fingerprint()
        assert first.pairs == second.pairs
        assert dict(first.counters) == dict(second.counters)


class TestTimingFieldsExcluded:
    def test_timing_fields_are_the_nondeterministic_ones(self):
        # The golden comparison is meaningful only because wall-clock and
        # worker identity are excluded; pin the exclusion list.
        assert set(TIMING_FIELDS) == {"start", "seconds", "pid", "tid"}

    def test_wall_clock_differs_but_fingerprint_does_not(self):
        first = run_traced("SpatialSpark")
        second = run_traced("SpatialSpark")
        assert first.trace.fingerprint() == second.trace.fingerprint()
        # start is monotonic clock time: two runs cannot share it.
        assert first.trace.start != second.trace.start
