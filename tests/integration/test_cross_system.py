"""Integration invariants across the whole stack.

The reproduction's central correctness premise: the three systems are
different *implementations of the same query*.  These tests hammer that
premise across workload shapes, parameterizations and configurations.
"""

import numpy as np
import pytest

from repro.core import BSPPartitioner, GridPartitioner
from repro.data import census_blocks, linear_water, taxi_points, tiger_edges
from repro.geometry import PolyLine, geometries_intersect
from repro.systems import (
    ALL_SYSTEMS,
    RunEnvironment,
    SpatialHadoop,
    SpatialSpark,
    make_system,
)


def run_all(left, right, **env_kw):
    out = {}
    for name in sorted(ALL_SYSTEMS):
        env = RunEnvironment.create(block_size=1 << 13, **env_kw)
        out[name] = make_system(name).run(env, left, right)
    return out


class TestResultParityAcrossWorkloads:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mixed_scale_point_workloads(self, seed):
        pts = taxi_points(300 * seed, seed=seed)
        blocks = census_blocks(40 * seed, seed=seed + 100)
        reports = run_all(pts, blocks)
        pairs = {r.pairs for r in reports.values()}
        assert len(pairs) == 1
        assert all(r.ok for r in reports.values())

    @pytest.mark.parametrize("seed", [4, 5])
    def test_polyline_workloads(self, seed):
        edges = tiger_edges(600, seed=seed)
        water = linear_water(200, seed=seed + 50)
        reports = run_all(edges, water)
        pairs = {r.pairs for r in reports.values()}
        assert len(pairs) == 1

    def test_polyline_vs_polygon(self):
        # A kind-pair no paper experiment uses: polylines × polygons.
        water = linear_water(150, seed=9, domain=census_blocks(1, seed=1)[0].mbr.expanded(0.5))
        blocks = census_blocks(60, seed=10)
        reports = run_all(water, blocks)
        assert len({r.pairs for r in reports.values()}) == 1

    def test_single_record_sides(self):
        pts = taxi_points(1, seed=11)
        blocks = census_blocks(50, seed=12)
        reports = run_all(pts, blocks)
        brute = frozenset(
            (0, j) for j, b in enumerate(blocks) if geometries_intersect(pts[0], b)
        )
        for r in reports.values():
            assert r.pairs == brute


class TestParameterizationInvariance:
    """Results must not depend on tuning knobs — only costs may change."""

    def workload(self):
        return tiger_edges(500, seed=13), linear_water(180, seed=14)

    def test_spatialhadoop_local_algorithm(self):
        left, right = self.workload()
        results = set()
        for algo in ("plane_sweep", "sync_rtree"):
            env = RunEnvironment.create(block_size=1 << 13)
            results.add(SpatialHadoop(local_algorithm=algo).run(env, left, right).pairs)
        assert len(results) == 1

    def test_spatialspark_partitioner_and_mode(self):
        left, right = self.workload()
        results = set()
        for kwargs in (
            {"partitioner": GridPartitioner()},
            {"partitioner": BSPPartitioner()},
            {"broadcast_join": True},
            {"n_partitions": 7},
            {"sample_fraction": 0.5},
        ):
            env = RunEnvironment.create(block_size=1 << 13)
            results.add(SpatialSpark(**kwargs).run(env, left, right).pairs)
        assert len(results) == 1

    def test_block_size_invariance(self):
        left, right = self.workload()
        results = set()
        for block_size in (1 << 11, 1 << 13, 1 << 16):
            env = RunEnvironment.create(block_size=block_size)
            results.add(SpatialHadoop().run(env, left, right).pairs)
        assert len(results) == 1

    def test_cluster_invariance_of_results(self):
        # The cluster only changes costs/failures, never the answer.
        from repro.cluster import PAPER_CONFIGS

        left, right = self.workload()
        results = set()
        for config in PAPER_CONFIGS().values():
            env = RunEnvironment.create(config, block_size=1 << 13)
            results.add(SpatialSpark().run(env, left, right).pairs)
        assert len(results) == 1


class TestDeduplication:
    """Multi-assignment must never produce duplicate result pairs."""

    def test_spanning_geometries(self):
        # Long polylines spanning many partitions force multi-assignment.
        rng = np.random.default_rng(15)
        spans = [
            PolyLine(np.round(np.column_stack([
                np.linspace(-74.2, -73.7, 20),
                40.6 + 0.2 * rng.random(20),
            ]), 6))
            for _ in range(20)
        ]
        blocks = census_blocks(150, seed=16)
        reports = run_all(spans, blocks)
        brute = frozenset(
            (i, j)
            for i, s in enumerate(spans)
            for j, b in enumerate(blocks)
            if s.mbr.intersects(b.mbr) and geometries_intersect(s, b)
        )
        for name, r in reports.items():
            assert r.pairs == brute, name


class TestCostedReports:
    def test_costing_every_config(self):
        from repro.cluster import PAPER_CONFIGS

        pts = taxi_points(300, seed=17)
        blocks = census_blocks(40, seed=18)
        for name, config in PAPER_CONFIGS().items():
            env = RunEnvironment.create(config, block_size=1 << 13)
            report = SpatialHadoop().run(env, pts, blocks).costed()
            assert report.clock.total_seconds > 0, name

    def test_geos_system_costs_more_geometry_time(self):
        # Same workload: HadoopGIS's engine profile must make its geometry
        # seconds larger than SpatialHadoop's for comparable op counts.
        from repro.cluster import CostModel, ws_config
        from repro.geometry import GEOS_COST_PROFILE, JTS_COST_PROFILE

        ops = {"geom.pip_tests": 1e6, "geom.vertex_ops": 1e7}
        from repro.cluster import PhaseRecord
        from repro.metrics import Counters

        phase = PhaseRecord(name="x", counters=Counters(ops), tasks=1)
        geos = CostModel(ws_config(), engine_profile=GEOS_COST_PROFILE).phase_seconds(phase)
        jts = CostModel(ws_config(), engine_profile=JTS_COST_PROFILE).phase_seconds(phase)
        assert geos == pytest.approx(4 * jts)


BACKENDS = ("serial", "thread", "process")


def report_fingerprint(report):
    """Everything a run produced except wall-clock: must match across
    backends bit for bit."""
    return (
        report.status,
        report.failure_kind,
        report.failure,
        report.pairs,
        dict(report.counters),
        [
            (p.name, p.group, p.tasks, p.seconds, dict(p.counters))
            for p in report.clock.phases
        ],
        report.memory_pressure,
    )


class TestBackendDeterminism:
    """The tentpole invariant: parallel execution backends change only
    wall-clock time — pairs, per-phase counters, simulated seconds and
    failure outcomes are bit-identical to serial execution."""

    @pytest.mark.parametrize("exp_id", ["taxi-nycb", "edges-linearwater"])
    @pytest.mark.parametrize("system", sorted(ALL_SYSTEMS))
    def test_table2_experiments_identical_across_backends(self, exp_id, system):
        from repro.experiments import run_experiment

        fingerprints = {
            backend: report_fingerprint(
                run_experiment(
                    exp_id, system, "EC2-10", exec_records=400,
                    seed=2, workers=3, backend=backend,
                )
            )
            for backend in BACKENDS
        }
        assert fingerprints["thread"] == fingerprints["serial"]
        assert fingerprints["process"] == fingerprints["serial"]

    def test_oom_failure_identical_across_backends(self):
        from repro.experiments import run_experiment

        fingerprints = [
            report_fingerprint(
                run_experiment(
                    "taxi-nycb", "SpatialSpark", "EC2-6", exec_records=600,
                    seed=1, workers=3, backend=backend,
                )
            )
            for backend in BACKENDS
        ]
        assert fingerprints[0][1] == "oom"
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]

    def test_broken_pipe_failure_identical_across_backends(self):
        from repro.experiments import run_experiment

        fingerprints = [
            report_fingerprint(
                run_experiment(
                    "edges-linearwater", "HadoopGIS", "EC2-10",
                    exec_records=600, seed=1, workers=3, backend=backend,
                )
            )
            for backend in BACKENDS
        ]
        assert fingerprints[0][1] == "broken_pipe"
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]

    def test_direct_run_identical_and_profiled(self):
        pts = taxi_points(400, seed=19)
        blocks = census_blocks(50, seed=20)
        reports = {}
        for backend in BACKENDS:
            env = RunEnvironment.create(
                block_size=1 << 13, workers=4, backend=backend
            )
            reports[backend] = SpatialHadoop().run(env, pts, blocks)
        base = report_fingerprint(reports["serial"])
        for backend in ("thread", "process"):
            assert report_fingerprint(reports[backend]) == base
            exec_profile = reports[backend].engine_profile["exec"]
            assert exec_profile["backend"] == backend
            assert exec_profile["tasks"] > 0
            assert exec_profile["task_seconds"] > 0.0
