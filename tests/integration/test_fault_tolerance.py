"""Fault-tolerance tests: injected failures, retries, lineage recompute.

The paper credits SpatialHadoop's robustness to "the mature Hadoop
platform"; these tests exercise the mechanisms behind that claim in both
substrates: Hadoop-style task retries and Spark-style lineage
recomputation — results stay correct, the duplicated work is charged.
"""

import pytest

from repro.cluster import SimClock
from repro.hdfs import SimulatedHDFS
from repro.mapreduce import MAX_TASK_ATTEMPTS, MapReduceJob, TaskAttemptError
from repro.metrics import Counters
from repro.spark import SparkContext


def make_mr_env():
    counters = Counters()
    hdfs = SimulatedHDFS(block_size=16, counters=counters)
    return hdfs, counters, SimClock()


def word_count(hdfs, counters, clock, fault_injector=None):
    return MapReduceJob(
        "wc",
        hdfs=hdfs, counters=counters, clock=clock,
        inputs=["/in"],
        map_task=lambda d: ((w, 1) for line in d.records for w in line.split()),
        reduce_task=lambda k, vs: [(k, sum(vs))],
        output_path="/out",
        fault_injector=fault_injector,
    )


class TestMapReduceRetries:
    def test_single_map_failure_retried_transparently(self):
        hdfs, counters, clock = make_mr_env()
        hdfs.write_file("/in", ["a b a", "b c a", "c c c"])
        killed = []

        def injector(kind, index, attempt):
            if kind == "map" and index == 1 and attempt == 0:
                killed.append((index, attempt))
                return True
            return False

        word_count(hdfs, counters, clock, injector).run()
        assert killed == [(1, 0)]
        assert dict(hdfs.read_all("/out")) == {"a": 3, "b": 2, "c": 4}
        assert counters["mr.task_retries"] == 1

    def test_reduce_failure_retried(self):
        hdfs, counters, clock = make_mr_env()
        hdfs.write_file("/in", ["a b", "c d"])

        def injector(kind, index, attempt):
            return kind == "reduce" and attempt == 0

        word_count(hdfs, counters, clock, injector).run()
        assert dict(hdfs.read_all("/out")) == {"a": 1, "b": 1, "c": 1, "d": 1}
        assert counters["mr.task_retries"] >= 1

    def test_retry_recharges_work(self):
        hdfs1, counters1, clock1 = make_mr_env()
        hdfs1.write_file("/in", ["a b", "c d"])
        word_count(hdfs1, counters1, clock1).run()

        hdfs2, counters2, clock2 = make_mr_env()
        hdfs2.write_file("/in", ["a b", "c d"])
        word_count(
            hdfs2, counters2, clock2,
            lambda kind, index, attempt: kind == "map" and attempt == 0,
        ).run()
        # Every map task ran twice: input re-read, extra task launches.
        assert counters2["hdfs.bytes_read"] > counters1["hdfs.bytes_read"]
        assert counters2["mr.tasks"] > counters1["mr.tasks"]

    def test_persistent_failure_exhausts_attempts(self):
        hdfs, counters, clock = make_mr_env()
        hdfs.write_file("/in", ["a b"])
        job = word_count(hdfs, counters, clock, lambda k, i, a: k == "map")
        with pytest.raises(TaskAttemptError, match="failed 4 attempts"):
            job.run()
        assert counters["mr.task_retries"] == MAX_TASK_ATTEMPTS


class TestSparkLineageRecompute:
    def test_recompute_preserves_result(self):
        sc = SparkContext(default_parallelism=4)
        lost = []

        def injector(label):
            if label.startswith("partitionBy") and not lost:
                lost.append(label)
                return True
            return False

        sc.fault_injector = injector
        grouped = sc.parallelize([(i % 5, i) for i in range(50)], 4).groupByKey(4)
        result = {k: sorted(vs) for k, vs in grouped.collect()}
        assert lost, "injector never fired"
        assert result[0] == [0, 5, 10, 15, 20, 25, 30, 35, 40, 45]
        assert sc.counters["spark.recomputes"] == 1

    def test_recompute_recharges_shuffle(self):
        def run(with_fault):
            sc = SparkContext(default_parallelism=4)
            if with_fault:
                fired = []

                def injector(label):
                    if label.startswith("partitionBy") and not fired:
                        fired.append(label)
                        return True
                    return False

                sc.fault_injector = injector
            sc.parallelize([(i, i) for i in range(100)], 4).groupByKey(4).collect()
            return sc.counters

        clean = run(False)
        faulty = run(True)
        # Lineage recomputation re-runs the shuffle: twice the bytes/stage.
        assert faulty["shuffle.bytes_mem"] == pytest.approx(
            2 * clean["shuffle.bytes_mem"]
        )
        assert faulty["spark.stages"] == clean["spark.stages"] + 1

    def test_source_recompute_rereads_hdfs(self):
        counters = Counters()
        hdfs = SimulatedHDFS(block_size=32, counters=counters)
        hdfs.write_file("/data", [f"r{i}" for i in range(20)])
        sc = SparkContext(counters=counters, hdfs=hdfs)
        fired = []

        def injector(label):
            if label.startswith("hdfs:") and not fired:
                fired.append(label)
                return True
            return False

        sc.fault_injector = injector
        baseline = hdfs.file_size("/data")
        assert sorted(sc.from_hdfs("/data").collect()) == sorted(
            f"r{i}" for i in range(20)
        )
        assert counters["hdfs.bytes_read"] == 2 * baseline  # read twice
