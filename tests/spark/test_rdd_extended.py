"""Tests for the extended RDD operations (distinct, sortBy, cogroup, ...)."""

import pytest

from repro.spark import SparkContext


@pytest.fixture
def sc():
    return SparkContext(default_parallelism=4)


class TestDistinct:
    def test_removes_duplicates(self, sc):
        got = sorted(sc.parallelize([1, 2, 2, 3, 1, 3, 3], 3).distinct(2).collect())
        assert got == [1, 2, 3]

    def test_is_a_shuffle(self, sc):
        sc.parallelize([1, 1, 2], 2).distinct(2).collect()
        assert sc.counters["shuffle.bytes_mem"] > 0

    def test_preserves_unique_input(self, sc):
        data = list(range(40))
        assert sorted(sc.parallelize(data, 4).distinct(3).collect()) == data

    def test_empty(self, sc):
        assert sc.parallelize([]).distinct().collect() == []


class TestSortBy:
    def test_global_order(self, sc):
        data = [7, 1, 9, 3, 8, 2, 6]
        assert sc.parallelize(data, 3).sortBy(lambda x: x).collect() == sorted(data)

    def test_custom_key(self, sc):
        data = ["bbb", "a", "cc"]
        assert sc.parallelize(data).sortBy(len).collect() == ["a", "cc", "bbb"]

    def test_partition_count(self, sc):
        rdd = sc.parallelize(range(20), 4).sortBy(lambda x: -x, n_out=5)
        assert rdd.num_partitions == 5
        assert rdd.collect() == list(range(19, -1, -1))

    def test_charges_sort_ops(self, sc):
        sc.parallelize(range(100), 4).sortBy(lambda x: x).collect()
        assert sc.counters["sort.ops"] > 0


class TestCogroup:
    def test_basic(self, sc):
        left = sc.parallelize([("a", 1), ("a", 2), ("b", 3)])
        right = sc.parallelize([("a", 10), ("c", 30)])
        got = dict(left.cogroup(right, 3).collect())
        assert sorted(got["a"][0]) == [1, 2] and got["a"][1] == [10]
        assert got["b"] == ([3], [])
        assert got["c"] == ([], [30])

    def test_co_partitioned_with_groups(self, sc):
        left = sc.parallelize([(i, i) for i in range(20)])
        right = sc.parallelize([(i, -i) for i in range(0, 20, 2)])
        cg = left.cogroup(right, 4)
        assert cg.partitioner is not None
        got = dict(cg.collect())
        assert got[4] == ([4], [-4])
        assert got[5] == ([5], [])


class TestActions:
    def test_reduce(self, sc):
        assert sc.parallelize(range(1, 11), 3).reduce(lambda a, b: a + b) == 55

    def test_reduce_empty_raises(self, sc):
        with pytest.raises(ValueError):
            sc.parallelize([]).reduce(lambda a, b: a + b)

    def test_countByKey(self, sc):
        rdd = sc.parallelize([("x", 1)] * 5 + [("y", 1)] * 2)
        assert rdd.countByKey() == {"x": 5, "y": 2}
