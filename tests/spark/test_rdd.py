"""RDD semantics tests: transformations, laziness, shuffles, actions."""

import pytest

from repro.spark import SparkContext


@pytest.fixture
def sc():
    return SparkContext(default_parallelism=4)


class TestNarrowTransformations:
    def test_map(self, sc):
        assert sc.parallelize([1, 2, 3]).map(lambda x: x * 2).collect() == [2, 4, 6]

    def test_flatMap(self, sc):
        rdd = sc.parallelize(["a b", "c"]).flatMap(str.split)
        assert rdd.collect() == ["a", "b", "c"]

    def test_filter(self, sc):
        assert sc.parallelize(range(10)).filter(lambda x: x % 3 == 0).collect() == [0, 3, 6, 9]

    def test_mapPartitions(self, sc):
        rdd = sc.parallelize(range(8), 4).mapPartitions(lambda p: [sum(p)])
        assert sum(rdd.collect()) == 28
        assert rdd.num_partitions == 4

    def test_keyBy_keys_values(self, sc):
        rdd = sc.parallelize([1, 2, 3]).keyBy(lambda x: x % 2)
        assert rdd.keys().collect() == [1, 0, 1]
        assert rdd.values().collect() == [1, 2, 3]

    def test_mapValues(self, sc):
        rdd = sc.parallelize([("a", 1), ("b", 2)]).mapValues(lambda v: v * 10)
        assert rdd.collect() == [("a", 10), ("b", 20)]

    def test_union(self, sc):
        a = sc.parallelize([1, 2], 2)
        b = sc.parallelize([3], 1)
        u = a.union(b)
        assert sorted(u.collect()) == [1, 2, 3]
        assert u.num_partitions == 3

    def test_chaining_is_lazy(self, sc):
        calls = []

        def f(x):
            calls.append(x)
            return x

        rdd = sc.parallelize([1, 2, 3]).map(f)
        assert calls == []  # nothing ran yet
        rdd.collect()
        assert calls == [1, 2, 3]

    def test_memoization_avoids_recompute(self, sc):
        calls = []
        rdd = sc.parallelize([1, 2]).map(lambda x: calls.append(x) or x)
        rdd.collect()
        rdd.collect()
        assert calls == [1, 2]


class TestSample:
    def test_fraction_bounds(self, sc):
        with pytest.raises(ValueError):
            sc.parallelize([1]).sample(1.5)

    def test_deterministic_given_seed(self, sc):
        data = list(range(1000))
        a = sc.parallelize(data, 4).sample(0.3, seed=7).collect()
        b = sc.parallelize(data, 4).sample(0.3, seed=7).collect()
        assert a == b

    def test_approximate_fraction(self, sc):
        data = list(range(10_000))
        got = sc.parallelize(data, 4).sample(0.2, seed=1).count()
        assert 1600 < got < 2400

    def test_sample_is_subset(self, sc):
        data = list(range(100))
        got = sc.parallelize(data, 4).sample(0.5, seed=3).collect()
        assert set(got) <= set(data)


class TestWideTransformations:
    def test_groupByKey(self, sc):
        rdd = sc.parallelize([("a", 1), ("b", 2), ("a", 3)]).groupByKey(3)
        grouped = dict(rdd.collect())
        assert sorted(grouped["a"]) == [1, 3]
        assert grouped["b"] == [2]
        assert rdd.num_partitions == 3

    def test_reduceByKey(self, sc):
        rdd = sc.parallelize([("a", 1), ("b", 2), ("a", 3)]).reduceByKey(lambda x, y: x + y)
        assert dict(rdd.collect()) == {"a": 4, "b": 2}

    def test_join(self, sc):
        left = sc.parallelize([(1, "l1"), (2, "l2"), (1, "l1b")])
        right = sc.parallelize([(1, "r1"), (3, "r3")])
        got = sorted(left.join(right, 2).collect())
        assert got == [(1, ("l1", "r1")), (1, ("l1b", "r1"))]

    def test_partitionBy_distributes_by_key_hash(self, sc):
        rdd = sc.parallelize([(i, i) for i in range(20)]).partitionBy(4)
        parts = rdd._partitions()
        assert len(parts) == 4
        for pi, part in enumerate(parts):
            for k, _ in part:
                assert hash(k) % 4 == pi

    def test_shuffle_charges_counters(self, sc):
        sc.parallelize([("a", 1)] * 50).groupByKey(2).collect()
        assert sc.counters["spark.stages"] >= 2  # shuffle + action
        assert sc.counters["shuffle.bytes_mem"] > 0
        assert sc.counters["sort.ops"] > 0

    def test_narrow_ops_do_not_shuffle(self, sc):
        sc.parallelize(range(100)).map(lambda x: x + 1).collect()
        assert sc.counters["shuffle.bytes_mem"] == 0


class TestActions:
    def test_count(self, sc):
        assert sc.parallelize(range(17), 4).count() == 17

    def test_take(self, sc):
        assert sc.parallelize(range(100), 4).take(5) == [0, 1, 2, 3, 4]

    def test_empty_rdd(self, sc):
        rdd = sc.parallelize([])
        assert rdd.collect() == []
        assert rdd.count() == 0

    def test_partition_count_capped_by_data(self, sc):
        rdd = sc.parallelize([1, 2], 8)
        assert rdd.num_partitions <= 2
