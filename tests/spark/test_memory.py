"""Spark memory ledger and OOM tests."""

import pytest

from repro.cluster import GB, PAPER_CONFIGS
from repro.hdfs import SimulatedHDFS
from repro.metrics import Counters
from repro.spark import MemoryLedger, MemoryModel, SparkContext, SparkOutOfMemoryError


class TestLedgerBasics:
    def test_load_footprint(self):
        ledger = MemoryLedger(budget_bytes=10_000)
        model = MemoryModel()
        footprint = ledger.charge_load(10, 100)
        assert footprint == pytest.approx(
            10 * model.record_overhead_load + 100 * model.byte_expansion_load
        )
        assert ledger.live_bytes == footprint
        assert ledger.peak_bytes == footprint

    def test_shuffle_cheaper_per_record_than_load(self):
        model = MemoryModel()
        assert model.shuffle_footprint(100, 0) < model.load_footprint(100, 0)

    def test_oom_raised_over_budget(self):
        ledger = MemoryLedger(budget_bytes=1000)
        with pytest.raises(SparkOutOfMemoryError, match="out of memory"):
            ledger.charge_load(100, 100)

    def test_scales_convert_to_logical(self):
        # 10 records at scale 1e6 = 10M logical records.
        ledger = MemoryLedger(budget_bytes=1 * GB, record_scale=1e6)
        with pytest.raises(SparkOutOfMemoryError):
            ledger.charge_load(10_000, 0)

    def test_release_returns_memory(self):
        ledger = MemoryLedger(budget_bytes=10_000)
        fp = ledger.charge_load(10, 10)
        ledger.release(fp)
        assert ledger.live_bytes == 0
        assert ledger.peak_bytes == fp  # peak is sticky

    def test_accumulation_triggers_oom(self):
        ledger = MemoryLedger(budget_bytes=6000)
        ledger.charge_load(10, 0)  # 2800
        ledger.charge_load(10, 0)  # 5600
        with pytest.raises(SparkOutOfMemoryError):
            ledger.charge_load(10, 0)


class TestPaperFailureMatrix:
    """The calibrated model must reproduce Table 2's OOM pattern.

    Workloads are (records, load bytes, shuffle-tuple bytes): both sides
    are loaded once and shuffled once, as in the SpatialSpark plan.  The
    shuffle volume carries the (pid, record) tuple framing the executed
    pipelines exhibit — ≈2× the raw line bytes for tiny point records,
    ≈1× for the large polyline records.
    """

    TAXI_NYCB = (
        169_720_892 + 38_839,
        int(6.9 * GB) + 19 * 1024**2,
        int(1.98 * (6.9 * GB + 19 * 1024**2)),
    )
    EDGES_LW = (
        72_729_686 + 5_857_442,
        int((23.8 + 8.4) * GB),
        int(1.02 * (23.8 + 8.4) * GB),
    )

    @pytest.mark.parametrize("workload", [TAXI_NYCB, EDGES_LW], ids=["taxi-nycb", "edges-lw"])
    @pytest.mark.parametrize(
        "config,should_fit",
        [("WS", True), ("EC2-10", True), ("EC2-8", False), ("EC2-6", False)],
    )
    def test_oom_matrix(self, workload, config, should_fit):
        records, load_bytes, shuffle_bytes = workload
        cluster = PAPER_CONFIGS()[config]
        ledger = MemoryLedger(budget_bytes=cluster.usable_memory_bytes)

        def run():
            ledger.charge_load(records, load_bytes)
            ledger.charge_shuffle(records, shuffle_bytes)

        if should_fit:
            run()
        else:
            with pytest.raises(SparkOutOfMemoryError):
                run()


class TestContextIntegration:
    def test_from_hdfs_charges_read_and_memory(self):
        counters = Counters()
        hdfs = SimulatedHDFS(block_size=20, counters=counters)
        hdfs.write_file("/data", ["rec_%d" % i for i in range(10)])
        ledger = MemoryLedger(budget_bytes=1 * GB)
        sc = SparkContext(counters=counters, hdfs=hdfs, ledger=ledger)
        rdd = sc.from_hdfs("/data")
        assert sorted(rdd.collect()) == sorted("rec_%d" % i for i in range(10))
        assert rdd.num_partitions == hdfs.num_blocks("/data")
        assert counters["hdfs.bytes_read"] > 0
        assert ledger.live_bytes > 0

    def test_from_hdfs_requires_hdfs(self):
        sc = SparkContext()
        with pytest.raises(RuntimeError):
            sc.from_hdfs("/x")

    def test_broadcast_charges_network_and_memory(self):
        sc = SparkContext(num_nodes=10)
        bc = sc.broadcast({"index": "x" * 100})
        assert bc.value["index"] == "x" * 100
        assert sc.counters["net.bytes_broadcast"] > 100
        assert sc.ledger.live_bytes >= 10 * 100  # one replica per node

    def test_oom_surfaces_through_action(self):
        ledger = MemoryLedger(budget_bytes=100)
        sc = SparkContext(ledger=ledger)
        rdd = sc.parallelize(range(100))
        with pytest.raises(SparkOutOfMemoryError):
            rdd.collect()

    def test_record_phase(self):
        sc = SparkContext()
        with sc.record_phase("load", group="index_a", tasks=4):
            sc.parallelize(range(10)).count()
        assert len(sc.clock.phases) == 1
        phase = sc.clock.phases[0]
        assert phase.group == "index_a"
        assert phase.counters["spark.stages"] >= 1
