"""cache()/unpersist() memory-management tests."""

import pytest

from repro.spark import MemoryLedger, SparkContext, SparkOutOfMemoryError


class TestUnpersist:
    def test_releases_ledger(self):
        ledger = MemoryLedger(budget_bytes=10**12)
        sc = SparkContext(ledger=ledger)
        rdd = sc.parallelize(range(500), 4).cache()
        rdd.collect()
        held = ledger.live_bytes
        assert held > 0
        rdd.unpersist()
        assert ledger.live_bytes == 0
        # Peak remains sticky (it records the high-water mark).
        assert ledger.peak_bytes == held

    def test_unpersist_then_recollect_recomputes(self):
        sc = SparkContext()
        shuffled = sc.parallelize([1, 2, 3], 1).keyBy(lambda x: x).partitionBy(2)
        shuffled.collect()
        first = sc.counters["shuffle.bytes_mem"]
        shuffled.unpersist()
        shuffled.collect()
        # The shuffle re-ran from the (memoized) parent after unpersist.
        assert sc.counters["shuffle.bytes_mem"] == pytest.approx(2 * first)

    def test_unpersist_idempotent(self):
        ledger = MemoryLedger(budget_bytes=10**12)
        sc = SparkContext(ledger=ledger)
        rdd = sc.parallelize(range(10), 2)
        rdd.collect()
        rdd.unpersist()
        rdd.unpersist()
        assert ledger.live_bytes == 0

    def test_unpersist_enables_sequential_queries(self):
        # Two queries that together exceed the budget fit sequentially
        # when the first is unpersisted — Spark's between-query hygiene.
        footprint_one = MemoryLedger(budget_bytes=float("inf"))
        sc_probe = SparkContext(ledger=footprint_one)
        sc_probe.parallelize(range(1000), 4).collect()
        one = footprint_one.live_bytes

        ledger = MemoryLedger(budget_bytes=one * 1.5)
        sc = SparkContext(ledger=ledger)
        first = sc.parallelize(range(1000), 4)
        first.collect()
        with pytest.raises(SparkOutOfMemoryError):
            sc.parallelize(range(1000), 4).collect()
        first.unpersist()
        sc.parallelize(range(1000), 4).collect()  # now fits
