"""Unit tests for exact scalar predicates."""

import numpy as np
import pytest

from repro.geometry import Point, PolyLine, Polygon
from repro.geometry.predicates import (
    geometries_intersect,
    on_segment,
    orientation,
    point_in_polygon,
    point_in_ring,
    point_on_ring,
    point_polyline_distance,
    point_segment_distance,
    polygon_intersects_polygon,
    polyline_intersects_polygon,
    polyline_intersects_polyline,
    segments_intersect,
)


class TestOrientation:
    def test_ccw_cw_collinear(self):
        assert orientation(0, 0, 1, 0, 1, 1) == 1
        assert orientation(0, 0, 1, 0, 1, -1) == -1
        assert orientation(0, 0, 1, 0, 2, 0) == 0

    def test_on_segment(self):
        assert on_segment(0, 0, 2, 2, 1, 1)
        assert not on_segment(0, 0, 2, 2, 3, 3)


class TestSegmentsIntersect:
    def test_proper_crossing(self):
        assert segments_intersect(0, 0, 2, 2, 0, 2, 2, 0)

    def test_disjoint(self):
        assert not segments_intersect(0, 0, 1, 1, 2, 2, 3, 3)

    def test_shared_endpoint(self):
        assert segments_intersect(0, 0, 1, 1, 1, 1, 2, 0)

    def test_t_junction(self):
        assert segments_intersect(0, 0, 2, 0, 1, 0, 1, 5)

    def test_collinear_overlap(self):
        assert segments_intersect(0, 0, 2, 0, 1, 0, 3, 0)

    def test_collinear_disjoint(self):
        assert not segments_intersect(0, 0, 1, 0, 2, 0, 3, 0)

    def test_parallel_non_collinear(self):
        assert not segments_intersect(0, 0, 1, 0, 0, 1, 1, 1)


SQUARE = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
DONUT = Polygon(
    [(0, 0), (10, 0), (10, 10), (0, 10)],
    holes=[[(3, 3), (7, 3), (7, 7), (3, 7)]],
)
# Concave "C" shape.
CSHAPE = Polygon([(0, 0), (6, 0), (6, 2), (2, 2), (2, 4), (6, 4), (6, 6), (0, 6)])


class TestPointInRing:
    def test_inside_outside(self):
        assert point_in_ring(SQUARE.exterior, 2, 2)
        assert not point_in_ring(SQUARE.exterior, 5, 2)

    def test_boundary_inclusive_and_exclusive(self):
        assert point_in_ring(SQUARE.exterior, 0, 2, boundary=True)
        assert not point_in_ring(SQUARE.exterior, 0, 2, boundary=False)
        assert point_in_ring(SQUARE.exterior, 0, 0, boundary=True)

    def test_point_on_ring(self):
        assert point_on_ring(SQUARE.exterior, 4, 2)
        assert point_on_ring(SQUARE.exterior, 4, 4)
        assert not point_on_ring(SQUARE.exterior, 2, 2)

    def test_vertex_ray_no_double_count(self):
        # A point whose scanline passes exactly through a vertex.
        tri = Polygon([(0, 0), (4, 2), (0, 4)])
        assert point_in_ring(tri.exterior, 1, 2)
        assert not point_in_ring(tri.exterior, 5, 2)
        assert not point_in_ring(tri.exterior, -1, 2)


class TestPointInPolygon:
    def test_simple(self):
        assert point_in_polygon(SQUARE, 1, 1)
        assert not point_in_polygon(SQUARE, -1, 1)

    def test_mbr_shortcut_consistency(self):
        assert not point_in_polygon(SQUARE, 100, 100)

    def test_hole_excluded(self):
        assert point_in_polygon(DONUT, 1, 1)
        assert not point_in_polygon(DONUT, 5, 5)

    def test_hole_boundary_still_inside(self):
        assert point_in_polygon(DONUT, 3, 5)

    def test_concave_notch(self):
        assert point_in_polygon(CSHAPE, 1, 3)   # in the spine
        assert not point_in_polygon(CSHAPE, 4, 3)  # in the notch
        assert point_in_polygon(CSHAPE, 4, 1)   # lower arm

    def test_exterior_boundary_inclusive(self):
        assert point_in_polygon(SQUARE, 4, 2)
        assert point_in_polygon(SQUARE, 0, 0)


class TestDistances:
    def test_point_segment_projection_inside(self):
        assert point_segment_distance(1, 1, 0, 0, 2, 0) == pytest.approx(1.0)

    def test_point_segment_clamped_to_endpoint(self):
        assert point_segment_distance(-3, 4, 0, 0, 2, 0) == pytest.approx(5.0)

    def test_degenerate_segment(self):
        assert point_segment_distance(3, 4, 0, 0, 0, 0) == pytest.approx(5.0)

    def test_point_polyline(self):
        line = PolyLine([(0, 0), (10, 0), (10, 10)])
        assert point_polyline_distance(Point(5, 3), line) == pytest.approx(3.0)
        assert point_polyline_distance(Point(12, 5), line) == pytest.approx(2.0)
        assert point_polyline_distance(Point(10, 5), line) == 0.0


class TestPolylinePolyline:
    def test_crossing(self):
        a = PolyLine([(0, 0), (5, 5)])
        b = PolyLine([(0, 5), (5, 0)])
        assert polyline_intersects_polyline(a, b)

    def test_mbr_disjoint_fast_path(self):
        a = PolyLine([(0, 0), (1, 1)])
        b = PolyLine([(10, 10), (11, 11)])
        assert not polyline_intersects_polyline(a, b)

    def test_mbrs_overlap_but_geometries_do_not(self):
        a = PolyLine([(0, 0), (4, 4)])
        b = PolyLine([(3, 0), (4, 0.5)])
        assert a.mbr.intersects(b.mbr)
        assert not polyline_intersects_polyline(a, b)

    def test_touching_endpoint(self):
        a = PolyLine([(0, 0), (2, 2)])
        b = PolyLine([(2, 2), (4, 0)])
        assert polyline_intersects_polyline(a, b)

    def test_multi_segment(self):
        a = PolyLine([(0, 0), (1, 3), (2, 0), (3, 3)])
        b = PolyLine([(0, 1.5), (3, 1.5)])
        assert polyline_intersects_polyline(a, b)


class TestPolylinePolygon:
    def test_line_through_polygon(self):
        line = PolyLine([(-1, 2), (5, 2)])
        assert polyline_intersects_polygon(line, SQUARE)

    def test_line_fully_inside(self):
        line = PolyLine([(1, 1), (2, 2)])
        assert polyline_intersects_polygon(line, SQUARE)

    def test_line_outside(self):
        line = PolyLine([(5, 5), (6, 6)])
        assert not polyline_intersects_polygon(line, SQUARE)

    def test_line_inside_hole_does_not_intersect(self):
        line = PolyLine([(4, 4), (6, 6)])
        assert not polyline_intersects_polygon(line, DONUT)

    def test_line_crossing_hole_boundary(self):
        line = PolyLine([(4, 4), (8, 8)])
        assert polyline_intersects_polygon(line, DONUT)


class TestPolygonPolygon:
    def test_overlapping(self):
        other = Polygon([(2, 2), (6, 2), (6, 6), (2, 6)])
        assert polygon_intersects_polygon(SQUARE, other)

    def test_containment(self):
        inner = Polygon([(1, 1), (2, 1), (2, 2), (1, 2)])
        assert polygon_intersects_polygon(SQUARE, inner)
        assert polygon_intersects_polygon(inner, SQUARE)

    def test_disjoint(self):
        other = Polygon([(10, 10), (12, 10), (12, 12), (10, 12)])
        assert not polygon_intersects_polygon(SQUARE, other)

    def test_cross_shape_no_contained_vertices(self):
        # Two long thin rectangles crossing like a plus sign: no vertex of
        # either lies in the other, only edges cross.
        horiz = Polygon([(-5, 1.8), (5, 1.8), (5, 2.2), (-5, 2.2)])
        vert = Polygon([(1.8, -5), (2.2, -5), (2.2, 5), (1.8, 5)])
        assert polygon_intersects_polygon(horiz, vert)


class TestGenericDispatch:
    def test_point_point(self):
        assert geometries_intersect(Point(1, 1), Point(1, 1))
        assert not geometries_intersect(Point(1, 1), Point(1, 2))

    def test_point_polygon_both_orders(self):
        assert geometries_intersect(Point(1, 1), SQUARE)
        assert geometries_intersect(SQUARE, Point(1, 1))

    def test_point_polyline(self):
        line = PolyLine([(0, 0), (4, 0)])
        assert geometries_intersect(Point(2, 0), line)
        assert not geometries_intersect(Point(2, 1), line)

    def test_polyline_polygon_both_orders(self):
        line = PolyLine([(-1, 2), (5, 2)])
        assert geometries_intersect(line, SQUARE)
        assert geometries_intersect(SQUARE, line)

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            geometries_intersect(Point(0, 0), object())
