"""Engine parity, operation accounting and cost-profile tests."""

import numpy as np
import pytest

from repro.geometry import (
    GEOS_COST_PROFILE,
    JTS_COST_PROFILE,
    GeosLikeEngine,
    JtsLikeEngine,
    Point,
    PolyLine,
    Polygon,
    make_engine,
)


SQUARE = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])


def random_scene(seed=0, n_pts=200, n_lines=40):
    rng = np.random.default_rng(seed)
    pts = [Point(x, y) for x, y in rng.uniform(0, 10, size=(n_pts, 2))]
    lines = [
        PolyLine(rng.uniform(0, 10, size=(rng.integers(2, 6), 2)))
        for _ in range(n_lines)
    ]
    polys = [
        Polygon(np.array([(0, 0), (3, 0.5), (4, 3), (1.5, 4)]) + rng.uniform(0, 7, 2))
        for _ in range(10)
    ]
    return pts, lines, polys


class TestFactory:
    def test_make_engine(self):
        assert isinstance(make_engine("jts"), JtsLikeEngine)
        assert isinstance(make_engine("geos"), GeosLikeEngine)

    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown geometry engine"):
            make_engine("sedona")


class TestEngineParity:
    """The two engines must return byte-identical answers."""

    def test_points_in_polygon_parity(self):
        pts, _, polys = random_scene(1)
        xy = np.array([p.xy for p in pts])
        jts, geos = JtsLikeEngine(), GeosLikeEngine()
        for poly in polys:
            np.testing.assert_array_equal(
                jts.points_in_polygon(poly, xy), geos.points_in_polygon(poly, xy)
            )

    def test_intersects_parity_all_kind_pairs(self):
        pts, lines, polys = random_scene(2, n_pts=30, n_lines=15)
        jts, geos = JtsLikeEngine(), GeosLikeEngine()
        geoms = pts[:8] + lines[:8] + polys[:4]
        for a in geoms:
            for b in geoms:
                assert jts.intersects(a, b) == geos.intersects(a, b), (a, b)

    def test_distance_parity(self):
        pts, lines, _ = random_scene(3, n_pts=25, n_lines=10)
        jts, geos = JtsLikeEngine(), GeosLikeEngine()
        for p in pts[:10]:
            for line in lines:
                assert jts.point_polyline_distance(p, line) == pytest.approx(
                    geos.point_polyline_distance(p, line), rel=1e-12, abs=1e-12
                )

    def test_refine_pairs_parity(self):
        _, lines, _ = random_scene(4, n_lines=30)
        left, right = lines[:15], lines[15:]
        candidates = [
            (i, j)
            for i in range(len(left))
            for j in range(len(right))
            if left[i].mbr.intersects(right[j].mbr)
        ]
        jts, geos = JtsLikeEngine(), GeosLikeEngine()
        assert jts.refine_pairs(left, right, candidates) == geos.refine_pairs(
            left, right, candidates
        )


class TestAccounting:
    def test_pip_counters(self):
        eng = JtsLikeEngine()
        xy = np.zeros((100, 2))
        eng.points_in_polygon(SQUARE, xy)
        assert eng.counters["geom.pip_tests"] == 100
        assert eng.counters["geom.vertex_ops"] == 100 * SQUARE.num_points

    def test_polyline_pair_counters(self):
        eng = GeosLikeEngine()
        a = PolyLine([(0, 0), (1, 1), (2, 0)])  # 2 segments
        b = PolyLine([(0, 1), (2, 1)])  # 1 segment
        eng.intersects(a, b)
        assert eng.counters["geom.seg_pair_tests"] == 2
        assert eng.counters["geom.mbr_tests"] == 1

    def test_reset_counters(self):
        eng = JtsLikeEngine()
        eng.intersects(Point(1, 1), SQUARE)
        assert eng.counters
        eng.reset_counters()
        assert not eng.counters

    def test_refine_counts_accumulate(self):
        eng = JtsLikeEngine()
        lines = [PolyLine([(i, 0), (i + 1, 1)]) for i in range(4)]
        eng.refine_pairs(lines, lines, [(0, 0), (1, 2), (3, 3)])
        assert eng.counters["geom.mbr_tests"] == 3


class TestCostProfiles:
    def test_geos_uniformly_slower(self):
        for key, jts_cost in JTS_COST_PROFILE.items():
            assert GEOS_COST_PROFILE[key] == pytest.approx(4.0 * jts_cost)

    def test_profiles_cover_all_counted_ops(self):
        eng = GeosLikeEngine()
        pts, lines, polys = random_scene(5, n_pts=10, n_lines=5)
        for g in pts[:3] + lines[:3] + polys[:2]:
            eng.intersects(g, polys[0])
        eng.point_polyline_distance(pts[0], lines[0])
        assert set(eng.counters) <= set(GEOS_COST_PROFILE)

    def test_engine_exposes_own_profile(self):
        assert JtsLikeEngine().cost_profile is JTS_COST_PROFILE
        assert GeosLikeEngine().cost_profile is GEOS_COST_PROFILE
