"""WKT codec round-trip and error-handling tests."""

import numpy as np
import pytest

from repro.geometry import Point, PolyLine, Polygon, WktError, from_wkt, to_wkt


class TestRoundTrip:
    def test_point(self):
        p = Point(1.25, -3.5)
        assert from_wkt(to_wkt(p)) == p

    def test_linestring(self):
        line = PolyLine([(0, 0), (1.5, 2.25), (-3, 4)])
        assert from_wkt(to_wkt(line)) == line

    def test_polygon(self):
        poly = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert from_wkt(to_wkt(poly)) == poly

    def test_polygon_with_holes(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(2, 2), (4, 2), (4, 4), (2, 4)], [(6, 6), (8, 6), (8, 8), (6, 8)]],
        )
        back = from_wkt(to_wkt(poly))
        assert back == poly
        assert len(back.holes) == 2

    def test_high_precision_coordinates_survive(self):
        p = Point(-73.98201375213, 40.74301293847)
        assert from_wkt(to_wkt(p)) == p


class TestParsing:
    def test_case_insensitive(self):
        assert isinstance(from_wkt("point (1 2)"), Point)
        assert isinstance(from_wkt("LineString (0 0, 1 1)"), PolyLine)

    def test_whitespace_tolerant(self):
        assert from_wkt("  POINT (  1   2 ) ") == Point(1, 2)

    def test_scientific_notation(self):
        assert from_wkt("POINT (1e3 -2.5e-2)") == Point(1000.0, -0.025)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "POINT ()",
            "POINT (1)",
            "POINT (a b)",
            "LINESTRING (1 1)",
            "LINESTRING (1 1, x 2)",
            "POLYGON ()",
            "POLYGON ((0 0, 1 1))",  # too few distinct points
            "TRIANGLE ((0 0, 1 0, 0 1))",
            "MULTIPOINT ((1 1))",
        ],
    )
    def test_malformed_raises(self, bad):
        with pytest.raises(WktError):
            from_wkt(bad)

    def test_non_string(self):
        with pytest.raises(WktError):
            from_wkt(42)

    def test_unsupported_geometry_serialization(self):
        with pytest.raises(TypeError):
            to_wkt(object())
