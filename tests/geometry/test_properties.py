"""Property-based tests (hypothesis) for geometry invariants.

These exercise the invariants the whole join stack relies on:
symmetry of intersection, MBR containment of geometries, scalar/vector
kernel agreement, and WKT round-tripping.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import MBR, Point, PolyLine, Polygon, from_wkt, to_wkt
from repro.geometry import predicates as sp
from repro.geometry import vectorized as vp

coord = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False, width=64
)


@st.composite
def mbrs(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return MBR(x1, y1, x2, y2)


@st.composite
def polylines(draw, max_points=8):
    n = draw(st.integers(2, max_points))
    pts = [(draw(coord), draw(coord)) for _ in range(n)]
    return PolyLine(pts)


@st.composite
def convex_polygons(draw, max_points=10):
    """Random convex polygon: points on a circle with jittered radii/angles."""
    n = draw(st.integers(3, max_points))
    cx, cy = draw(coord), draw(coord)
    radius = draw(st.floats(0.1, 50.0))
    angles = sorted(
        draw(
            st.lists(
                st.floats(0, 2 * math.pi - 1e-6), min_size=n, max_size=n, unique=True
            )
        )
    )
    pts = [(cx + radius * math.cos(a), cy + radius * math.sin(a)) for a in angles]
    # Nearly-equal angles can collapse points after rounding; discard
    # degenerate rings rather than constrain the strategy.
    from hypothesis import assume

    assume(len({(round(x, 12), round(y, 12)) for x, y in pts}) >= 3)
    try:
        return Polygon(pts)
    except ValueError:
        assume(False)


class TestMBRProperties:
    @given(mbrs(), mbrs())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(mbrs(), mbrs())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains(a) and u.contains(b)

    @given(mbrs(), mbrs())
    def test_intersection_contained_in_both(self, a, b):
        inter = a.intersection(b)
        if not inter.is_empty:
            assert a.contains(inter) and b.contains(inter)

    @given(mbrs(), mbrs())
    def test_containment_implies_intersection(self, a, b):
        if a.contains(b) and not b.is_empty:
            assert a.intersects(b)

    @given(mbrs())
    def test_self_union_idempotent(self, a):
        assert a.union(a) == a

    @given(mbrs(), mbrs(), mbrs())
    def test_union_associative(self, a, b, c):
        lhs = a.union(b).union(c)
        rhs = a.union(b.union(c))
        assert lhs == rhs


class TestPredicateProperties:
    @given(polylines(), polylines())
    @settings(max_examples=60)
    def test_polyline_intersection_symmetric(self, a, b):
        assert sp.polyline_intersects_polyline(a, b) == sp.polyline_intersects_polyline(b, a)

    @given(polylines(), polylines())
    @settings(max_examples=60)
    def test_vectorized_matches_scalar(self, a, b):
        assert vp.polylines_intersect(a, b) == sp.polyline_intersects_polyline(a, b)

    @given(polylines())
    def test_polyline_self_intersects(self, a):
        assert sp.polyline_intersects_polyline(a, a)

    @given(st.lists(st.tuples(coord, coord), min_size=1, max_size=64), polylines())
    @settings(max_examples=40)
    def test_distance_kernel_matches_scalar(self, pts, line):
        xy = np.array(pts, dtype=np.float64)
        got = vp.points_segments_min_distance(xy, line)
        want = [sp.point_polyline_distance(Point(x, y), line) for x, y in pts]
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)

    @given(st.lists(st.tuples(coord, coord), min_size=1, max_size=64), convex_polygons())
    @settings(max_examples=40)
    def test_pip_kernel_matches_scalar(self, pts, poly):
        xy = np.array(pts, dtype=np.float64)
        got = vp.points_in_polygon(poly, xy)
        want = [sp.point_in_polygon(poly, x, y) for x, y in pts]
        np.testing.assert_array_equal(got, want)

    @given(convex_polygons())
    @settings(max_examples=40)
    def test_polygon_vertices_inside_own_polygon(self, poly):
        for x, y in poly.exterior[:-1]:
            assert sp.point_in_polygon(poly, x, y)

    @given(convex_polygons())
    @settings(max_examples=40)
    def test_mbr_contains_polygon_centroid_hits(self, poly):
        # Any point inside the polygon must be inside its MBR.
        cx = poly.exterior[:-1, 0].mean()
        cy = poly.exterior[:-1, 1].mean()
        if sp.point_in_polygon(poly, cx, cy):
            assert poly.mbr.contains_point(cx, cy)


class TestWktProperties:
    @given(coord, coord)
    def test_point_roundtrip(self, x, y):
        p = Point(x, y)
        assert from_wkt(to_wkt(p)) == p

    @given(polylines())
    @settings(max_examples=60)
    def test_polyline_roundtrip(self, line):
        assert from_wkt(to_wkt(line)) == line

    @given(convex_polygons())
    @settings(max_examples=60)
    def test_polygon_roundtrip(self, poly):
        assert from_wkt(to_wkt(poly)) == poly
