"""Geometry distance function tests (the ε-distance join substrate)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, PolyLine, Polygon, geometry_distance
from repro.geometry.predicates import (
    point_polygon_distance,
    polyline_polygon_distance,
    polyline_polyline_distance,
    segment_segment_distance,
)

SQUARE = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])


class TestSegmentSegment:
    def test_parallel(self):
        assert segment_segment_distance(0, 0, 1, 0, 0, 1, 1, 1) == pytest.approx(1.0)

    def test_crossing_is_zero(self):
        assert segment_segment_distance(0, 0, 2, 2, 0, 2, 2, 0) == 0.0

    def test_endpoint_to_interior(self):
        assert segment_segment_distance(0, 0, 1, 0, 2, -1, 2, 1) == pytest.approx(1.0)

    def test_collinear_gap(self):
        assert segment_segment_distance(0, 0, 1, 0, 3, 0, 4, 0) == pytest.approx(2.0)

    def test_degenerate_segments(self):
        # Two points as zero-length segments.
        assert segment_segment_distance(0, 0, 0, 0, 3, 4, 3, 4) == pytest.approx(5.0)


class TestPolylineDistances:
    def test_disjoint_polylines(self):
        a = PolyLine([(0, 0), (2, 0)])
        b = PolyLine([(0, 3), (2, 3)])
        assert polyline_polyline_distance(a, b) == pytest.approx(3.0)

    def test_touching_is_zero(self):
        a = PolyLine([(0, 0), (2, 2)])
        b = PolyLine([(2, 2), (4, 0)])
        assert polyline_polyline_distance(a, b) == 0.0

    def test_multi_segment_closest_pair(self):
        a = PolyLine([(0, 0), (5, 0), (5, 5)])
        b = PolyLine([(7, 5), (9, 5)])
        assert polyline_polyline_distance(a, b) == pytest.approx(2.0)


class TestPolygonDistances:
    def test_point_inside_is_zero(self):
        assert point_polygon_distance(Point(2, 2), SQUARE) == 0.0

    def test_point_outside(self):
        assert point_polygon_distance(Point(7, 2), SQUARE) == pytest.approx(3.0)
        assert point_polygon_distance(Point(7, 8), SQUARE) == pytest.approx(5.0)

    def test_point_in_hole(self):
        donut = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(3, 3), (7, 3), (7, 7), (3, 7)]],
        )
        assert point_polygon_distance(Point(5, 5), donut) == pytest.approx(2.0)

    def test_polyline_to_polygon(self):
        line = PolyLine([(6, 0), (6, 4)])
        assert polyline_polygon_distance(line, SQUARE) == pytest.approx(2.0)

    def test_intersecting_polyline_is_zero(self):
        line = PolyLine([(-1, 2), (5, 2)])
        assert polyline_polygon_distance(line, SQUARE) == 0.0


class TestGenericDistance:
    def test_point_point(self):
        assert geometry_distance(Point(0, 0), Point(3, 4)) == pytest.approx(5.0)

    def test_symmetric_dispatch(self):
        line = PolyLine([(10, 0), (10, 10)])
        assert geometry_distance(Point(7, 5), line) == geometry_distance(line, Point(7, 5))
        assert geometry_distance(line, SQUARE) == geometry_distance(SQUARE, line)

    def test_polygon_polygon(self):
        other = Polygon([(7, 0), (9, 0), (9, 4), (7, 4)])
        assert geometry_distance(SQUARE, other) == pytest.approx(3.0)
        overlapping = Polygon([(2, 2), (6, 2), (6, 6), (2, 6)])
        assert geometry_distance(SQUARE, overlapping) == 0.0

    def test_unsupported(self):
        with pytest.raises(TypeError):
            geometry_distance(Point(0, 0), object())


coord = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)


@st.composite
def polylines(draw, max_points=5):
    n = draw(st.integers(2, max_points))
    return PolyLine([(draw(coord), draw(coord)) for _ in range(n)])


class TestDistanceProperties:
    @given(polylines(), polylines())
    @settings(max_examples=50)
    def test_symmetry(self, a, b):
        assert polyline_polyline_distance(a, b) == pytest.approx(
            polyline_polyline_distance(b, a), rel=1e-12, abs=1e-12
        )

    @given(polylines(), polylines())
    @settings(max_examples=50)
    def test_zero_iff_intersecting(self, a, b):
        from repro.geometry import polyline_intersects_polyline

        d = polyline_polyline_distance(a, b)
        if polyline_intersects_polyline(a, b):
            assert d == 0.0
        else:
            assert d > 0.0

    @given(polylines(), st.tuples(coord, coord))
    @settings(max_examples=50)
    def test_triangle_style_bound(self, line, pt):
        # Distance to a polyline is never more than to any of its vertices.
        p = Point(*pt)
        d = geometry_distance(p, line)
        vertex_dists = [
            math.hypot(p.x - x, p.y - y) for x, y in line.coords
        ]
        assert d <= min(vertex_dists) + 1e-9
