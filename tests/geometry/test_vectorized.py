"""Vectorized kernels must agree exactly with the scalar predicates."""

import numpy as np
import pytest

from repro.geometry import Point, PolyLine, Polygon
from repro.geometry import predicates as sp
from repro.geometry import vectorized as vp


SQUARE = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
DONUT = Polygon(
    [(0, 0), (10, 0), (10, 10), (0, 10)],
    holes=[[(3, 3), (7, 3), (7, 7), (3, 7)]],
)


def grid_points(box, n=23):
    xs = np.linspace(box.xmin - 1, box.xmax + 1, n)
    ys = np.linspace(box.ymin - 1, box.ymax + 1, n)
    gx, gy = np.meshgrid(xs, ys)
    return np.column_stack([gx.ravel(), gy.ravel()])


class TestPointsInRing:
    @pytest.mark.parametrize("boundary", [True, False])
    def test_matches_scalar_on_grid(self, boundary):
        pts = grid_points(SQUARE.mbr)
        got = vp.points_in_ring(SQUARE.exterior, pts, boundary=boundary)
        want = np.array(
            [sp.point_in_ring(SQUARE.exterior, x, y, boundary=boundary) for x, y in pts]
        )
        np.testing.assert_array_equal(got, want)

    def test_boundary_points(self):
        pts = np.array([[0.0, 2.0], [4.0, 4.0], [2.0, 0.0], [2.0, 2.0], [9.0, 9.0]])
        incl = vp.points_in_ring(SQUARE.exterior, pts, boundary=True)
        excl = vp.points_in_ring(SQUARE.exterior, pts, boundary=False)
        np.testing.assert_array_equal(incl, [True, True, True, True, False])
        np.testing.assert_array_equal(excl, [False, False, False, True, False])

    def test_points_on_ring(self):
        pts = np.array([[0.0, 2.0], [2.0, 2.0], [4.0, 0.0]])
        np.testing.assert_array_equal(
            vp.points_on_ring(SQUARE.exterior, pts), [True, False, True]
        )


class TestPointsInPolygon:
    def test_matches_scalar_with_holes(self):
        pts = grid_points(DONUT.mbr, n=31)
        got = vp.points_in_polygon(DONUT, pts)
        want = np.array([sp.point_in_polygon(DONUT, x, y) for x, y in pts])
        np.testing.assert_array_equal(got, want)

    def test_empty_batch(self):
        assert vp.points_in_polygon(SQUARE, np.empty((0, 2))).shape == (0,)

    def test_hole_boundary_inclusive(self):
        pts = np.array([[3.0, 5.0], [5.0, 5.0]])
        np.testing.assert_array_equal(vp.points_in_polygon(DONUT, pts), [True, False])

    def test_random_points_match_scalar(self):
        rng = np.random.default_rng(7)
        poly = Polygon(
            [(0, 0), (8, 1), (9, 5), (5, 9), (1, 7)],
            holes=[[(3, 3), (5, 3), (5, 5), (3, 5)]],
        )
        pts = rng.uniform(-1, 10, size=(500, 2))
        got = vp.points_in_polygon(poly, pts)
        want = np.array([sp.point_in_polygon(poly, x, y) for x, y in pts])
        np.testing.assert_array_equal(got, want)


class TestSegmentMatrix:
    def test_matches_scalar_random(self):
        rng = np.random.default_rng(11)
        a = rng.uniform(0, 10, size=(20, 4))
        b = rng.uniform(0, 10, size=(25, 4))
        mat = vp.segments_intersect_matrix(a[:, :2], a[:, 2:], b[:, :2], b[:, 2:])
        for i in range(a.shape[0]):
            for j in range(b.shape[0]):
                want = sp.segments_intersect(*a[i], *b[j])
                assert mat[i, j] == want, (i, j)

    def test_touch_cases(self):
        a0 = np.array([[0.0, 0.0]])
        a1 = np.array([[2.0, 0.0]])
        b0 = np.array([[2.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        b1 = np.array([[3.0, 1.0], [1.0, 5.0], [1.0, 1.0]])
        mat = vp.segments_intersect_matrix(a0, a1, b0, b1)
        np.testing.assert_array_equal(mat[0], [True, True, False])

    def test_polylines_intersect(self):
        a = PolyLine([(0, 0), (1, 3), (2, 0), (3, 3)])
        b = PolyLine([(0, 1.5), (3, 1.5)])
        c = PolyLine([(10, 10), (11, 11)])
        assert vp.polylines_intersect(a, b)
        assert not vp.polylines_intersect(a, c)

    def test_polylines_match_scalar_random(self):
        rng = np.random.default_rng(3)
        for _ in range(50):
            a = PolyLine(rng.uniform(0, 4, size=(rng.integers(2, 6), 2)))
            b = PolyLine(rng.uniform(0, 4, size=(rng.integers(2, 6), 2)))
            assert vp.polylines_intersect(a, b) == sp.polyline_intersects_polyline(a, b)


class TestPointSegmentDistances:
    def test_matches_scalar(self):
        rng = np.random.default_rng(5)
        line = PolyLine(rng.uniform(0, 10, size=(8, 2)))
        pts = rng.uniform(-2, 12, size=(100, 2))
        got = vp.points_segments_min_distance(pts, line)
        want = np.array(
            [sp.point_polyline_distance(Point(x, y), line) for x, y in pts]
        )
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)

    def test_degenerate_segment_in_line(self):
        line = PolyLine([(0, 0), (0, 0), (10, 0)])
        got = vp.points_segments_min_distance(np.array([[5.0, 2.0]]), line)
        assert got[0] == pytest.approx(2.0)
