"""CSR multi-geometry kernels must agree bit-for-bit with the scalar path.

The kernels in :mod:`repro.geometry.kernels` evaluate whole candidate
sets against a batch's packed CSR buffers.  These tests pit them against
three references on randomized inputs: the scalar predicates, the
per-ring vectorized kernels, and the base engine's grouped fallback —
including boundary points, polygons with holes, degenerate horizontal
segments, and chunk-boundary effects.
"""

import numpy as np
import pytest

from repro.geometry import Point, PolyLine, Polygon
from repro.geometry import kernels as kp
from repro.geometry import predicates as sp
from repro.geometry import vectorized as vp
from repro.geometry.batch import GeometryBatch
from repro.geometry.engine import GeometryEngine, make_engine
from repro.metrics import Counters


def star_polygon(rng, cx, cy, rmax, with_hole=False):
    """Random star-shaped polygon (sorted angles → simple ring)."""
    n = int(rng.integers(4, 12))
    angles = np.sort(rng.uniform(0.0, 2 * np.pi, n))
    while np.any(np.diff(angles) < 1e-6):
        angles = np.sort(rng.uniform(0.0, 2 * np.pi, n))
    radii = rng.uniform(0.4 * rmax, rmax, n)
    pts = [(cx + r * np.cos(a), cy + r * np.sin(a)) for r, a in zip(radii, angles)]
    holes = []
    if with_hole:
        hr = 0.25 * rmax
        ha = np.linspace(0.0, 2 * np.pi, 6, endpoint=False)
        holes = [[(cx + hr * np.cos(a), cy + hr * np.sin(a)) for a in ha]]
    return Polygon(pts, holes=holes)


def random_polygons(rng, n):
    return [
        star_polygon(
            rng,
            cx=rng.uniform(0, 10),
            cy=rng.uniform(0, 10),
            rmax=rng.uniform(0.5, 2.5),
            with_hole=bool(rng.integers(0, 2)),
        )
        for _ in range(n)
    ]


def random_polylines(rng, n):
    out = []
    for _ in range(n):
        k = int(rng.integers(2, 9))
        base = rng.uniform(0, 10, 2)
        steps = rng.uniform(-1, 1, (k, 2))
        out.append(PolyLine((base + np.cumsum(steps, axis=0)).tolist()))
    return out


def boundary_points(poly, rng, per_ring=4):
    """Exact vertices and exact midpoints of random ring segments."""
    pts = []
    for ring in (poly.exterior, *poly.holes):
        segs = rng.integers(0, ring.shape[0] - 1, per_ring)
        for s in segs:
            a, b = ring[s], ring[s + 1]
            pts.append(a)
            pts.append((a + b) / 2.0)  # exact: cross product is exactly 0
    return np.array(pts)


def candidate_pairs(rng, xy_pool, n_geoms, k):
    rows = rng.integers(0, n_geoms, k).astype(np.int64)
    xy = xy_pool[rng.integers(0, xy_pool.shape[0], k)]
    return xy, rows


class TestPointsInPolygonsCSR:
    def test_matches_scalar_and_vectorized(self):
        rng = np.random.default_rng(101)
        polys = random_polygons(rng, 12)
        batch = GeometryBatch.from_geometries(polys)
        pool = rng.uniform(-1, 11, (300, 2))
        xy, rows = candidate_pairs(rng, pool, len(polys), 500)

        got = kp.points_in_polygons_csr(
            xy, rows, batch.coords, batch.ring_offsets, batch.geom_rings,
            batch.mbrs.data,
        )
        scalar = np.array(
            [sp.point_in_polygon(polys[r], x, y) for (x, y), r in zip(xy, rows)]
        )
        np.testing.assert_array_equal(got, scalar)
        for r in np.unique(rows):
            sel = rows == r
            np.testing.assert_array_equal(
                got[sel], vp.points_in_polygon(polys[r], xy[sel])
            )

    def test_boundary_points_inclusive(self):
        rng = np.random.default_rng(102)
        polys = random_polygons(rng, 8)
        batch = GeometryBatch.from_geometries(polys)
        for r, poly in enumerate(polys):
            xy = boundary_points(poly, rng)
            rows = np.full(xy.shape[0], r, dtype=np.int64)
            got = kp.points_in_polygons_csr(
                xy, rows, batch.coords, batch.ring_offsets, batch.geom_rings,
                batch.mbrs.data,
            )
            scalar = np.array([sp.point_in_polygon(poly, x, y) for x, y in xy])
            np.testing.assert_array_equal(got, scalar)
            # Exact ring vertices (even positions of the first 2*per_ring
            # points, which come from the exterior ring) are inclusively
            # contained: their cross product is exactly zero.  Midpoints
            # only get the scalar-agreement guarantee — (a+b)/2 need not
            # lie exactly on the segment in floating point.
            assert got[:8:2].all()

    def test_degenerate_horizontal_segments(self):
        # Axis-aligned rings are all horizontal/vertical segments: the
        # safe_dy guard and the half-open crossing rule get no help from
        # general-position geometry here.
        boxes = [
            Polygon([(0, 0), (4, 0), (4, 4), (0, 4)]),
            Polygon([(1, 1), (9, 1), (9, 3), (1, 3)],
                    holes=[[(2, 1.5), (3, 1.5), (3, 2.5), (2, 2.5)]]),
        ]
        batch = GeometryBatch.from_geometries(boxes)
        # Points sitting exactly on horizontal-edge y-levels, inside,
        # outside, on corners and on the hole boundary.
        xy = np.array([
            [2.0, 0.0], [2.0, 4.0], [0.0, 0.0], [4.0, 4.0], [5.0, 0.0],
            [2.0, 2.0], [-1.0, 0.0],
            [2.0, 1.0], [2.0, 3.0], [2.5, 1.5], [2.5, 2.0], [5.0, 2.0],
            [1.0, 1.0], [9.0, 3.0], [2.0, 1.5], [10.0, 1.0],
        ])
        rows = np.array([0] * 7 + [1] * 9, dtype=np.int64)
        got = kp.points_in_polygons_csr(
            xy, rows, batch.coords, batch.ring_offsets, batch.geom_rings,
            batch.mbrs.data,
        )
        scalar = np.array(
            [sp.point_in_polygon(boxes[r], x, y) for (x, y), r in zip(xy, rows)]
        )
        np.testing.assert_array_equal(got, scalar)

    def test_chunking_is_invisible(self, monkeypatch):
        rng = np.random.default_rng(103)
        polys = random_polygons(rng, 10)
        batch = GeometryBatch.from_geometries(polys)
        pool = rng.uniform(-1, 11, (200, 2))
        xy, rows = candidate_pairs(rng, pool, len(polys), 400)
        args = (xy, rows, batch.coords, batch.ring_offsets, batch.geom_rings,
                batch.mbrs.data)
        whole = kp.points_in_polygons_csr(*args)
        monkeypatch.setattr(kp, "_FLAT_CHUNK", 7)
        np.testing.assert_array_equal(kp.points_in_polygons_csr(*args), whole)

    def test_empty_candidates(self):
        batch = GeometryBatch.from_geometries(
            random_polygons(np.random.default_rng(104), 3)
        )
        got = kp.points_in_polygons_csr(
            np.empty((0, 2)), np.empty(0, dtype=np.int64),
            batch.coords, batch.ring_offsets, batch.geom_rings, batch.mbrs.data,
        )
        assert got.shape == (0,) and got.dtype == bool


class TestPointsWithinPolylinesCSR:
    @pytest.mark.parametrize("distance", [0.05, 0.5, 2.0])
    def test_matches_vectorized(self, distance):
        rng = np.random.default_rng(105)
        lines = random_polylines(rng, 10)
        batch = GeometryBatch.from_geometries(lines)
        pool = rng.uniform(-2, 12, (300, 2))
        xy, rows = candidate_pairs(rng, pool, len(lines), 600)
        # Guarantee hits at every threshold: one point 0.01 off each
        # line's first vertex, paired with that line.
        near = np.array([line.coords[0] + [0.01, 0.0] for line in lines])
        xy = np.concatenate([xy, near])
        rows = np.concatenate(
            [rows, np.arange(len(lines), dtype=np.int64)]
        )
        got = kp.points_within_polylines_csr(
            xy, rows, batch.coords, batch.ring_offsets, batch.geom_rings,
            distance,
        )
        assert got.any()  # the thresholds are chosen to produce hits
        for r in np.unique(rows):
            sel = rows == r
            want = vp.points_segments_min_distance(xy[sel], lines[r]) <= distance
            np.testing.assert_array_equal(got[sel], want)

    def test_matches_scalar_off_threshold(self):
        # The scalar distance uses hypot (different rounding than
        # sqrt-of-sum), so compare masks only where the distance is not
        # within an ulp-scale band of the threshold.
        rng = np.random.default_rng(106)
        lines = random_polylines(rng, 6)
        batch = GeometryBatch.from_geometries(lines)
        pool = rng.uniform(-2, 12, (200, 2))
        xy, rows = candidate_pairs(rng, pool, len(lines), 300)
        distance = 0.75
        got = kp.points_within_polylines_csr(
            xy, rows, batch.coords, batch.ring_offsets, batch.geom_rings,
            distance,
        )
        scalar = np.array([
            sp.point_polyline_distance(Point(x, y), lines[r])
            for (x, y), r in zip(xy, rows)
        ])
        clear = np.abs(scalar - distance) > 1e-9
        assert clear.sum() > 200
        np.testing.assert_array_equal(got[clear], (scalar <= distance)[clear])

    def test_exact_on_vertex_distance_zero(self):
        line = PolyLine([(0.0, 0.0), (3.0, 0.0), (3.0, 4.0)])
        batch = GeometryBatch.from_geometries([line])
        xy = np.array([[0.0, 0.0], [3.0, 0.0], [3.0, 4.0], [1.5, 0.0]])
        rows = np.zeros(4, dtype=np.int64)
        got = kp.points_within_polylines_csr(
            xy, rows, batch.coords, batch.ring_offsets, batch.geom_rings, 0.0,
        )
        np.testing.assert_array_equal(got, [True, True, True, True])

    def test_chunking_is_invisible(self, monkeypatch):
        rng = np.random.default_rng(107)
        lines = random_polylines(rng, 8)
        batch = GeometryBatch.from_geometries(lines)
        pool = rng.uniform(-2, 12, (150, 2))
        xy, rows = candidate_pairs(rng, pool, len(lines), 250)
        args = (xy, rows, batch.coords, batch.ring_offsets, batch.geom_rings, 0.8)
        whole = kp.points_within_polylines_csr(*args)
        monkeypatch.setattr(kp, "_FLAT_CHUNK", 5)
        np.testing.assert_array_equal(
            kp.points_within_polylines_csr(*args), whole
        )


class TestEngineGroupedFallbackParity:
    """JtsLikeEngine's CSR overrides vs the base grouped per-row loop:
    identical masks AND identical counter totals."""

    def test_points_in_polygons(self):
        rng = np.random.default_rng(108)
        polys = random_polygons(rng, 9)
        batch = GeometryBatch.from_geometries(polys)
        pool = rng.uniform(-1, 11, (200, 2))
        xy, rows = candidate_pairs(rng, pool, len(polys), 350)
        rows = np.sort(rows)  # grouped fallback expects row-sorted input

        c_csr = Counters()
        csr = make_engine("jts", c_csr).points_in_polygons(batch, rows, xy)
        c_grp = Counters()
        grouped = GeometryEngine.points_in_polygons(
            make_engine("jts", c_grp), batch, rows, xy
        )
        np.testing.assert_array_equal(csr, grouped)
        assert dict(c_csr) == dict(c_grp)

    def test_points_within_distances(self):
        rng = np.random.default_rng(109)
        lines = random_polylines(rng, 7)
        batch = GeometryBatch.from_geometries(lines)
        pool = rng.uniform(-2, 12, (200, 2))
        xy, rows = candidate_pairs(rng, pool, len(lines), 300)
        rows = np.sort(rows)

        c_csr = Counters()
        csr = make_engine("jts", c_csr).points_within_distances(
            batch, rows, xy, 0.6
        )
        c_grp = Counters()
        grouped = GeometryEngine.points_within_distances(
            make_engine("jts", c_grp), batch, rows, xy, 0.6
        )
        np.testing.assert_array_equal(csr, grouped)
        assert dict(c_csr) == dict(c_grp)
