"""Unit tests for geometry primitives."""

import numpy as np
import pytest

from repro.geometry import MBR, Point, PolyLine, Polygon


class TestPoint:
    def test_basic(self):
        p = Point(1.5, -2.0)
        assert p.xy == (1.5, -2.0)
        assert p.mbr == MBR(1.5, -2.0, 1.5, -2.0)
        assert p.num_points == 1

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            Point(float("nan"), 0)
        with pytest.raises(ValueError):
            Point(0, float("inf"))

    def test_equality_and_hash(self):
        assert Point(1, 2) == Point(1, 2)
        assert Point(1, 2) != Point(2, 1)
        assert len({Point(1, 2), Point(1, 2), Point(3, 4)}) == 2


class TestPolyLine:
    def test_basic(self):
        line = PolyLine([(0, 0), (3, 4), (3, 8)])
        assert line.num_points == 3
        assert line.num_segments == 2
        assert line.length == pytest.approx(9.0)
        assert line.mbr == MBR(0, 0, 3, 8)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            PolyLine([(0, 0)])

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            PolyLine(np.zeros((3, 3)))

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            PolyLine([(0, 0), (np.nan, 1)])

    def test_coords_are_contiguous_float64(self):
        line = PolyLine([(0, 0), (1, 1)])
        assert line.coords.flags["C_CONTIGUOUS"]
        assert line.coords.dtype == np.float64

    def test_equality_and_hash(self):
        a = PolyLine([(0, 0), (1, 1)])
        b = PolyLine([(0, 0), (1, 1)])
        assert a == b and hash(a) == hash(b)


class TestPolygon:
    def test_ring_closed_automatically(self):
        poly = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert np.array_equal(poly.exterior[0], poly.exterior[-1])
        assert poly.exterior.shape[0] == 5

    def test_already_closed_ring_not_double_closed(self):
        poly = Polygon([(0, 0), (4, 0), (4, 4), (0, 4), (0, 0)])
        assert poly.exterior.shape[0] == 5

    def test_exterior_normalized_ccw(self):
        cw = Polygon([(0, 0), (0, 4), (4, 4), (4, 0)])  # clockwise input
        assert Polygon._signed_area(cw.exterior) > 0

    def test_holes_normalized_cw(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(2, 2), (4, 2), (4, 4), (2, 4)]],  # ccw input
        )
        assert Polygon._signed_area(poly.holes[0]) < 0

    def test_area_subtracts_holes(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(2, 2), (4, 2), (4, 4), (2, 4)]],
        )
        assert poly.area == pytest.approx(100 - 4)

    def test_num_points_includes_holes(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(2, 2), (4, 2), (4, 4), (2, 4)]],
        )
        assert poly.num_points == 5 + 5

    def test_mbr(self):
        poly = Polygon([(1, 2), (5, 2), (5, 7), (1, 7)])
        assert poly.mbr == MBR(1, 2, 5, 7)

    def test_requires_three_points(self):
        with pytest.raises(ValueError):
            Polygon([(0, 0), (1, 1)])

    def test_serialized_size_scales_with_points(self):
        small = Polygon([(0, 0), (1, 0), (1, 1)])
        big = Polygon([(i, i * i % 7) for i in range(50)])
        assert big.serialized_size() > small.serialized_size()

    def test_equality(self):
        a = Polygon([(0, 0), (4, 0), (4, 4)])
        b = Polygon([(0, 0), (4, 0), (4, 4)])
        assert a == b and hash(a) == hash(b)
