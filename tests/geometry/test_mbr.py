"""Unit tests for scalar MBR and vectorized MBRArray operations."""

import numpy as np
import pytest

from repro.geometry import EMPTY_MBR, MBR, MBRArray


class TestMBRBasics:
    def test_width_height_area(self):
        m = MBR(0, 1, 4, 4)
        assert m.width == 4
        assert m.height == 3
        assert m.area == 12
        assert m.margin == 7

    def test_center(self):
        assert MBR(0, 0, 4, 2).center == (2.0, 1.0)

    def test_empty_detection(self):
        assert EMPTY_MBR.is_empty
        assert MBR(1, 0, 0, 1).is_empty
        assert not MBR(0, 0, 0, 0).is_empty  # degenerate point box is valid

    def test_empty_has_zero_extent(self):
        assert EMPTY_MBR.area == 0.0
        assert EMPTY_MBR.width == 0.0

    def test_of_point_and_points(self):
        assert MBR.of_point(3, 4) == MBR(3, 4, 3, 4)
        assert MBR.of_points([1, 5, 3], [2, 0, 9]) == MBR(1, 0, 5, 9)
        assert MBR.of_points([], []).is_empty


class TestMBRPredicates:
    def test_intersects_overlap(self):
        assert MBR(0, 0, 2, 2).intersects(MBR(1, 1, 3, 3))

    def test_intersects_touching_edge_counts(self):
        assert MBR(0, 0, 1, 1).intersects(MBR(1, 0, 2, 1))
        assert MBR(0, 0, 1, 1).intersects(MBR(1, 1, 2, 2))  # corner touch

    def test_disjoint(self):
        assert not MBR(0, 0, 1, 1).intersects(MBR(2, 2, 3, 3))
        assert not MBR(0, 0, 1, 1).intersects(MBR(0, 2, 1, 3))

    def test_empty_never_intersects(self):
        assert not EMPTY_MBR.intersects(MBR(0, 0, 1, 1))
        assert not MBR(0, 0, 1, 1).intersects(EMPTY_MBR)

    def test_contains(self):
        outer, inner = MBR(0, 0, 10, 10), MBR(2, 2, 5, 5)
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert outer.contains(outer)

    def test_contains_empty_vacuous(self):
        assert MBR(0, 0, 1, 1).contains(EMPTY_MBR)
        assert not EMPTY_MBR.contains(MBR(0, 0, 1, 1))

    def test_contains_point_boundary_inclusive(self):
        m = MBR(0, 0, 2, 2)
        assert m.contains_point(0, 0)
        assert m.contains_point(2, 2)
        assert m.contains_point(1, 1)
        assert not m.contains_point(2.0001, 1)


class TestMBRCombinators:
    def test_union(self):
        assert MBR(0, 0, 1, 1).union(MBR(2, 2, 3, 3)) == MBR(0, 0, 3, 3)

    def test_union_with_empty_is_identity(self):
        m = MBR(0, 0, 1, 1)
        assert m.union(EMPTY_MBR) == m
        assert EMPTY_MBR.union(m) == m

    def test_union_all(self):
        boxes = [MBR(0, 0, 1, 1), MBR(5, -1, 6, 0), MBR(2, 3, 3, 4)]
        assert MBR.union_all(boxes) == MBR(0, -1, 6, 4)
        assert MBR.union_all([]).is_empty

    def test_intersection(self):
        assert MBR(0, 0, 4, 4).intersection(MBR(2, 2, 6, 6)) == MBR(2, 2, 4, 4)
        assert MBR(0, 0, 1, 1).intersection(MBR(5, 5, 6, 6)).is_empty

    def test_expanded(self):
        assert MBR(0, 0, 1, 1).expanded(0.5) == MBR(-0.5, -0.5, 1.5, 1.5)

    def test_enlargement(self):
        m = MBR(0, 0, 2, 2)
        assert m.enlargement(MBR(0, 0, 1, 1)) == 0.0
        assert m.enlargement(MBR(0, 0, 4, 2)) == pytest.approx(4.0)


class TestMBRArray:
    def _boxes(self):
        return MBRArray.from_mbrs(
            [MBR(0, 0, 2, 2), MBR(1, 1, 3, 3), MBR(5, 5, 6, 6), MBR(2, 0, 4, 1)]
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            MBRArray(np.zeros((3, 3)))

    def test_len_getitem_iter(self):
        arr = self._boxes()
        assert len(arr) == 4
        assert arr[0] == MBR(0, 0, 2, 2)
        assert [m for m in arr][2] == MBR(5, 5, 6, 6)

    def test_from_points_degenerate(self):
        arr = MBRArray.from_points(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert arr[0] == MBR(1, 2, 1, 2)
        assert arr[1] == MBR(3, 4, 3, 4)

    def test_from_points_validates_shape(self):
        with pytest.raises(ValueError):
            MBRArray.from_points(np.zeros((4, 3)))

    def test_extent(self):
        assert self._boxes().extent() == MBR(0, 0, 6, 6)
        assert MBRArray.empty().extent().is_empty

    def test_areas(self):
        np.testing.assert_allclose(self._boxes().areas(), [4.0, 4.0, 1.0, 2.0])

    def test_centers(self):
        np.testing.assert_allclose(
            self._boxes().centers, [[1, 1], [2, 2], [5.5, 5.5], [3, 0.5]]
        )

    def test_intersects_one_matches_scalar(self):
        arr = self._boxes()
        q = MBR(1.5, 0.5, 2.5, 2.5)
        expected = [arr[i].intersects(q) for i in range(len(arr))]
        np.testing.assert_array_equal(arr.intersects_one(q), expected)

    def test_intersects_one_empty_query(self):
        assert not self._boxes().intersects_one(EMPTY_MBR).any()

    def test_cross_intersects_matches_scalar(self):
        a = self._boxes()
        b = MBRArray.from_mbrs([MBR(0, 0, 1, 1), MBR(10, 10, 11, 11)])
        mat = a.cross_intersects(b)
        for i in range(len(a)):
            for j in range(len(b)):
                assert mat[i, j] == a[i].intersects(b[j])

    def test_pairwise_intersects(self):
        a = MBRArray.from_mbrs([MBR(0, 0, 1, 1), MBR(0, 0, 1, 1)])
        b = MBRArray.from_mbrs([MBR(0.5, 0.5, 2, 2), MBR(3, 3, 4, 4)])
        np.testing.assert_array_equal(a.pairwise_intersects(b), [True, False])
        with pytest.raises(ValueError):
            a.pairwise_intersects(self._boxes())

    def test_union_pairs(self):
        a = MBRArray.from_mbrs([MBR(0, 0, 1, 1)])
        b = MBRArray.from_mbrs([MBR(2, -1, 3, 0.5)])
        assert a.union_pairs(b)[0] == MBR(0, -1, 3, 1)

    def test_contains_points(self):
        arr = self._boxes()
        pts = np.array([[1.0, 1.0], [5.5, 5.5]])
        mat = arr.contains_points(pts)
        assert mat.shape == (4, 2)
        assert mat[0, 0] and mat[1, 0] and not mat[2, 0]
        assert mat[2, 1] and not mat[0, 1]

    def test_take(self):
        arr = self._boxes().take(np.array([2, 0]))
        assert arr[0] == MBR(5, 5, 6, 6)
        assert arr[1] == MBR(0, 0, 2, 2)
