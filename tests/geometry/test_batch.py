"""GeometryBatch: round trips, cached MBRs, codecs, pickling, reshaping.

The columnar data plane's contract is *bit-identical equivalence* with
the object plane: same MBRs, same WKT text, same sizes, same geometry
values back out.  These tests pin that contract, including via
hypothesis over random mixed-kind collections.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.loaders import (
    SpatialRecord,
    decode_lines,
    decode_lines_batch,
    encode_batch,
    encode_dataset,
)
from repro.data.synthetic import census_blocks, taxi_points, tiger_edges
from repro.geometry import (
    KIND_POINT,
    KIND_POLYGON,
    KIND_POLYLINE,
    GeometryBatch,
    MBRArray,
    Point,
    PolyLine,
    Polygon,
    as_mbr_array,
    from_wkt,
    to_wkt,
    wkt_of_parts,
    wkt_parts,
)

coord = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False, width=64
)


@st.composite
def geometries(draw):
    kind = draw(st.sampled_from(["point", "polyline", "polygon"]))
    if kind == "point":
        return Point(draw(coord), draw(coord))
    if kind == "polyline":
        n = draw(st.integers(2, 6))
        return PolyLine([(draw(coord), draw(coord)) for _ in range(n)])
    cx, cy = draw(coord), draw(coord)
    r = draw(st.floats(0.1, 10.0))
    n = draw(st.integers(3, 7))
    angles = np.linspace(0, 2 * np.pi, n, endpoint=False)
    return Polygon([(cx + r * np.cos(a), cy + r * np.sin(a)) for a in angles])


def mixed_dataset():
    return (
        taxi_points(40, seed=1)
        + census_blocks(12, seed=2)
        + tiger_edges(15, seed=3)
    )


class TestRoundTrip:
    def test_from_to_geometries(self):
        geoms = mixed_dataset()
        batch = GeometryBatch.from_geometries(geoms)
        assert len(batch) == len(geoms)
        assert batch.to_geometries() == geoms

    def test_lazy_getitem_matches_and_caches(self):
        geoms = mixed_dataset()
        batch = GeometryBatch.from_geometries(geoms)
        assert batch[5] == geoms[5]
        assert batch[5] is batch[5]  # cached materialization
        assert batch[-1] == geoms[-1]

    def test_polygon_with_holes_round_trips(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(2, 2), (4, 2), (4, 4), (2, 4)]],
        )
        batch = GeometryBatch.from_geometries([poly])
        assert batch[0] == poly
        assert batch.mbrs.data[0].tolist() == [0.0, 0.0, 10.0, 10.0]

    def test_from_records_keeps_ids(self):
        records = [SpatialRecord(i * 7, g) for i, g in enumerate(mixed_dataset())]
        batch = GeometryBatch.from_records(records)
        assert batch.ids.tolist() == [r.rid for r in records]
        assert [r.geometry for r in batch.to_records()] == [
            r.geometry for r in records
        ]

    @settings(max_examples=60, deadline=None)
    @given(st.lists(geometries(), min_size=0, max_size=12))
    def test_property_round_trip(self, geoms):
        batch = GeometryBatch.from_geometries(geoms)
        assert batch.to_geometries() == geoms
        ref = MBRArray.from_geometries(geoms)
        assert np.array_equal(batch.mbrs.data, ref.data)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(geometries(), min_size=1, max_size=10))
    def test_property_codec_matches_scalar(self, geoms):
        lines = list(encode_batch(GeometryBatch.from_geometries(geoms)))
        assert lines == list(encode_dataset(geoms))
        back = decode_lines_batch(lines)
        assert back.to_geometries() == geoms


class TestCachedMBRs:
    def test_mbrs_equal_object_mbrs(self):
        geoms = mixed_dataset()
        batch = GeometryBatch.from_geometries(geoms)
        ref = MBRArray.from_geometries(geoms)
        assert np.array_equal(batch.mbrs.data, ref.data)
        assert batch.extent() == ref.extent()

    def test_as_mbr_array_uses_cache(self):
        batch = GeometryBatch.from_geometries(mixed_dataset())
        assert as_mbr_array(batch) is batch.mbrs

    def test_polygon_mbr_is_exterior_only(self):
        poly = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(2, 2), (4, 2), (4, 4), (2, 4)]],
        )
        batch = GeometryBatch.from_geometries([poly])
        assert batch.mbrs.data[0].tolist() == list(poly.mbr.as_tuple())


class TestWktParts:
    def test_parts_match_scalar_parser(self):
        for geom in mixed_dataset():
            text = to_wkt(geom)
            kind, rings = wkt_parts(text)
            expected = {Point: KIND_POINT, PolyLine: KIND_POLYLINE,
                        Polygon: KIND_POLYGON}[type(geom)]
            assert kind == expected
            assert wkt_of_parts(kind, rings) == text
            assert from_wkt(text) == geom

    def test_malformed_wkt_raises(self):
        from repro.geometry.wkt import WktError

        for bad in ("POINT (1)", "LINESTRING (1 2)", "POLYGON ((1 2, 3 4))",
                    "CIRCLE (0 0)", "POINT (a b)"):
            with pytest.raises(WktError):
                wkt_parts(bad)


class TestCodecs:
    def test_encode_batch_matches_encode_dataset(self):
        geoms = mixed_dataset()
        batch = GeometryBatch.from_geometries(geoms)
        assert list(encode_batch(batch)) == list(encode_dataset(geoms))

    def test_decode_lines_batch_matches_scalar(self):
        lines = list(encode_dataset(mixed_dataset()))
        batch = decode_lines_batch(lines)
        records = list(decode_lines(lines))
        assert batch.ids.tolist() == [r.rid for r in records]
        assert batch.to_geometries() == [r.geometry for r in records]

    def test_decode_rejects_tabless_line(self):
        with pytest.raises(ValueError):
            decode_lines_batch(["no-tab-here"])

    def test_record_sizes_match_serialized_size(self):
        records = [
            SpatialRecord(rid, g)
            for rid, g in zip((0, 7, 123, 45678), mixed_dataset())
        ]
        batch = GeometryBatch.from_records(records)
        assert batch.record_sizes().tolist() == [
            r.serialized_size() for r in records
        ]
        assert batch.serialized_size() == sum(r.serialized_size() for r in records)


class TestPickle:
    def test_pickle_round_trip(self):
        batch = GeometryBatch.from_geometries(mixed_dataset())
        clone = pickle.loads(pickle.dumps(batch))
        assert clone.equals(batch)
        assert np.array_equal(clone.mbrs.data, batch.mbrs.data)

    def test_pickle_is_array_based(self):
        # The payload must serialize arrays, not per-geometry objects:
        # materialize every object, then check none of them travel.
        batch = GeometryBatch.from_geometries(mixed_dataset())
        list(batch)  # fill the lazy object cache
        payload = pickle.dumps(batch)
        assert b"Polygon" not in payload and b"primitives" not in payload


class TestReshaping:
    def test_take_slice_concat(self):
        geoms = mixed_dataset()
        batch = GeometryBatch.from_geometries(geoms)
        rows = np.array([3, 0, 41, 55], dtype=np.int64)
        taken = batch.take(rows)
        assert taken.to_geometries() == [geoms[i] for i in rows]
        assert taken.ids.tolist() == rows.tolist()
        assert np.array_equal(taken.mbrs.data, batch.mbrs.data[rows])

        part = batch.slice(10, 20)
        assert part.to_geometries() == geoms[10:20]

        merged = GeometryBatch.concat([batch.slice(0, 10), batch.slice(10, len(batch))])
        assert merged.to_geometries() == geoms

    def test_points_xy_reads_packed_buffer(self):
        pts = taxi_points(25, seed=9)
        batch = GeometryBatch.from_geometries(pts)
        rows = np.array([4, 11, 19], dtype=np.int64)
        xy = batch.points_xy(rows)
        assert xy.tolist() == [[pts[i].x, pts[i].y] for i in rows]

    def test_coerce_accepts_all_representations(self):
        geoms = mixed_dataset()
        batch = GeometryBatch.from_geometries(geoms)
        assert GeometryBatch.coerce(batch) is batch
        assert GeometryBatch.coerce(geoms).equals(batch)
        records = [SpatialRecord(i, g) for i, g in enumerate(geoms)]
        assert GeometryBatch.coerce(records).equals(batch)

    def test_empty_batch(self):
        empty = GeometryBatch.empty()
        assert len(empty) == 0
        assert empty.to_geometries() == []
        assert len(empty.mbrs) == 0
        assert GeometryBatch.concat([]).equals(empty)
