"""Tests for the shared Counters type (the accounting backbone)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import Counters

keys = st.sampled_from(["a", "b", "c", "hdfs.bytes_read", "geom.pip_tests"])
counter_dicts = st.dictionaries(keys, st.floats(0, 1e9), max_size=5)


class TestBasics:
    def test_missing_key_is_zero(self):
        c = Counters()
        assert c["nope"] == 0.0  # repro: noqa[CTR001]
        assert "nope" not in c  # reading must not create the key

    def test_add(self):
        c = Counters()
        c.add("x")  # repro: noqa[CTR001]
        c.add("x", 2.5)  # repro: noqa[CTR001]
        assert c["x"] == 3.5  # repro: noqa[CTR001]

    def test_merge_returns_self(self):
        c = Counters({"a": 1})
        assert c.merge({"a": 2, "b": 3}) is c
        assert c == {"a": 3, "b": 3}

    def test_snapshot_is_independent(self):
        c = Counters({"a": 1})
        snap = c.snapshot()
        c.add("a")  # repro: noqa[CTR001]
        assert snap["a"] == 1  # repro: noqa[CTR001]

    def test_diff(self):
        c = Counters({"a": 5, "b": 2})
        earlier = {"a": 3, "c": 1}
        assert c.diff(earlier) == {"a": 2, "b": 2, "c": -1}

    def test_diff_drops_zero_deltas(self):
        c = Counters({"a": 5})
        assert "a" not in c.diff({"a": 5})

    def test_scaled(self):
        c = Counters({"a": 2, "b": 3})
        assert c.scaled({"a": 10}, default=1.0) == {"a": 20, "b": 3}

    def test_total(self):
        total = Counters.total([{"a": 1}, {"a": 2, "b": 1}])
        assert total == {"a": 3, "b": 1}


class TestProperties:
    @given(counter_dicts, counter_dicts)
    def test_merge_is_addition(self, d1, d2):
        c = Counters(d1)
        c.merge(d2)
        for k in set(d1) | set(d2):
            assert c[k] == d1.get(k, 0) + d2.get(k, 0)

    @given(counter_dicts, counter_dicts)
    def test_diff_inverts_merge(self, base, extra):
        c = Counters(base)
        snap = c.snapshot()
        c.merge(extra)
        delta = c.diff(snap)
        for k, v in extra.items():
            # Floating-point addition loses the increment when it is tiny
            # relative to the base value; only check recoverable deltas.
            if v > 1e-6 * base.get(k, 0.0):
                assert delta[k] == pytest.approx(v, rel=1e-9, abs=1e-12)

    @given(counter_dicts)
    def test_total_of_one_is_identity(self, d):
        assert Counters.total([d]) == {k: v for k, v in d.items()}


class TestRedirectToken:
    """The redirect sink map is keyed by an explicit per-instance token,
    not ``id()`` — a GC'd-and-reallocated Counters must never inherit a
    stale sink registered for a dead instance at the same address."""

    def test_tokens_are_unique_and_stable(self):
        a, b = Counters(), Counters()
        assert a.token != b.token
        assert a.token == a.token  # allocated once, then cached

    def test_token_not_allocated_until_asked(self):
        c = Counters()
        assert "_token" not in c.__dict__
        c.add("x")  # plain charges never allocate a token  # repro: noqa[CTR001]
        assert "_token" not in c.__dict__
        c.token
        assert "_token" in c.__dict__

    def test_stale_id_keyed_sink_is_ignored(self):
        from repro.metrics import _REDIRECT

        c = Counters()
        sinks = getattr(_REDIRECT, "sinks", None)
        if sinks is None:
            sinks = _REDIRECT.sinks = {}
        # Simulate the old bug's poison: a sink registered under this
        # instance's id() (as if a dead Counters once lived there).
        stale = {}
        sinks[id(c)] = stale  # repro: noqa[DET001]
        try:
            c.add("x", 5)  # repro: noqa[CTR001]
        finally:
            del sinks[id(c)]  # repro: noqa[DET001]
        assert stale == {}
        assert c == {"x": 5}

    def test_redirect_hits_only_the_token_keyed_sink(self):
        from repro.exec import run_task

        first = Counters()
        first.token  # allocate, then drop the instance
        del first
        c = Counters()

        def body():
            c.add("x", 3)  # repro: noqa[CTR001]

        outcome = run_task(0, body, c)
        assert outcome.counters == {"x": 3}
        assert c == {}

    def test_reallocated_instance_cannot_collide(self):
        # Tokens never collide even when instances reuse a freed address
        # (CPython recycles them eagerly) — the scenario id() keying got
        # wrong.  Allocate-and-drop in a loop to force address reuse.
        addresses = set()
        tokens = set()
        for _ in range(64):
            c = Counters()
            addresses.add(id(c))  # repro: noqa[DET001]
            tokens.add(c.token)
            del c
        assert len(tokens) == 64
        assert len(addresses) < 64  # addresses *were* reused; tokens not


class TestDiffOrdering:
    """diff() emits keys sorted: its insertion order feeds per-phase
    exports, and raw set-union order varies with string-hash
    randomisation across processes (the DET003 lint contract)."""

    def test_diff_keys_are_sorted(self):
        c = Counters({"z.late": 5, "a.early": 2, "m.mid": 1})
        delta = c.diff({"a.early": 1, "q.gone": 3})
        assert list(delta) == sorted(delta)

    def test_diff_values_unchanged_by_ordering(self):
        c = Counters({"z": 5, "a": 2})
        assert c.diff({"a": 1, "q": 3}) == {"z": 5, "a": 1, "q": -3}


class TestCounterSchema:
    def test_every_schema_key_has_a_group_prefix(self):
        from repro.metrics import COUNTER_SCHEMA

        assert COUNTER_SCHEMA, "schema must not be empty"
        for key in COUNTER_SCHEMA:
            assert "." in key and key == key.strip()

    def test_schema_is_importable_from_package_metrics(self):
        from repro import metrics

        assert "join.candidates" in metrics.COUNTER_SCHEMA
        assert "geom.pip_tests" in metrics.COUNTER_SCHEMA
