"""Negative-path tests of the bench_parallel strict gate.

``benchmarks/`` is a flat script directory, not a package, so the
module is loaded by file path.  The rows below are hand-built (no
joins are timed): the point is pinning the gate *policy* —
undersubscribed rows are exempt from ``BENCH_PARALLEL_STRICT=1``,
fully-subscribed regressions still fail.
"""

import importlib.util
from pathlib import Path

BENCH_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "bench_parallel.py"
)
spec = importlib.util.spec_from_file_location("bench_parallel", BENCH_PATH)
bench_parallel = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_parallel)


def _rows(parallel_wall):
    """A serial baseline at 10s plus one 4-worker row."""
    return [
        {"backend": "serial", "workers": 1, "wall_seconds": 10.0},
        {"backend": "process", "workers": 4, "wall_seconds": parallel_wall},
    ]


class TestClassifyRows:
    def test_serial_baseline_is_1x_and_never_flagged(self):
        rows = bench_parallel.classify_rows(_rows(5.0), affinity=8)
        assert rows[0]["speedup"] == 1.0
        assert not rows[0]["undersubscribed"]
        assert not rows[0]["slower_than_serial"]

    def test_fully_subscribed_speedup(self):
        rows = bench_parallel.classify_rows(_rows(5.0), affinity=8)
        assert rows[1]["speedup"] == 2.0
        assert not rows[1]["undersubscribed"]
        assert not rows[1]["slower_than_serial"]

    def test_fully_subscribed_regression_is_flagged(self):
        rows = bench_parallel.classify_rows(_rows(20.0), affinity=8)
        assert rows[1]["speedup"] == 0.5
        assert not rows[1]["undersubscribed"]
        assert rows[1]["slower_than_serial"]

    def test_undersubscribed_regression_is_exempt(self):
        # 1 usable core, 4 workers: slow, but not a regression signal.
        rows = bench_parallel.classify_rows(_rows(20.0), affinity=1)
        assert rows[1]["undersubscribed"]
        assert not rows[1]["slower_than_serial"]

    def test_affinity_boundary_is_inclusive(self):
        # Exactly as many cores as workers is fully subscribed.
        rows = bench_parallel.classify_rows(_rows(20.0), affinity=4)
        assert not rows[1]["undersubscribed"]
        assert rows[1]["slower_than_serial"]


class TestStrictGate:
    def test_gate_off_never_fails(self):
        rows = bench_parallel.classify_rows(_rows(20.0), affinity=8)
        assert bench_parallel.strict_gate(rows, env={}) == 0

    def test_fully_subscribed_regression_fails_under_strict(self):
        rows = bench_parallel.classify_rows(_rows(20.0), affinity=8)
        env = {"BENCH_PARALLEL_STRICT": "1"}
        assert bench_parallel.strict_gate(rows, env=env) == 1

    def test_undersubscribed_regression_passes_under_strict(self):
        rows = bench_parallel.classify_rows(_rows(20.0), affinity=1)
        env = {"BENCH_PARALLEL_STRICT": "1"}
        assert bench_parallel.strict_gate(rows, env=env) == 0

    def test_healthy_speedup_passes_under_strict(self):
        rows = bench_parallel.classify_rows(_rows(5.0), affinity=8)
        env = {"BENCH_PARALLEL_STRICT": "1"}
        assert bench_parallel.strict_gate(rows, env=env) == 0
